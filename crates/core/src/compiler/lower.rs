//! Lowering: HOP DAGs → executable instruction plans.
//!
//! This is the LOP/instruction layer of the paper's §2.3: given entry
//! sizes, the DAG is size-propagated, dynamically rewritten, and flattened
//! into a register-based instruction sequence with per-instruction
//! execution types (CP or distributed). Plans are cached per block and
//! invalidated when live-in sizes change — dynamic recompilation.

use super::hop::{ExecType, HopId, HopOp, SizeInfo};
use super::size::{propagate, SizeEnv};
use super::{rewrites, BasicBlock, Root};
use sysds_common::EngineConfig;

/// One lowered instruction: read `inputs` slots, write slot `out`.
#[derive(Debug, Clone)]
pub struct Instr {
    pub op: HopOp,
    pub inputs: Vec<usize>,
    pub out: usize,
    pub exec: ExecType,
    pub size: SizeInfo,
}

/// Variable bindings a plan produces (slot → variable).
#[derive(Debug, Clone, PartialEq)]
pub struct PlanBinding {
    pub name: String,
    pub slot: usize,
}

/// An executable plan for one basic block.
#[derive(Debug, Clone)]
pub struct Plan {
    pub instrs: Vec<Instr>,
    pub nslots: usize,
    pub bindings: Vec<PlanBinding>,
    /// Slot holding `__result` for expression blocks.
    pub result_slot: Option<usize>,
    /// True when some reachable node had unknown sizes at lowering time.
    pub had_unknown: bool,
    /// Live-in sizes the plan was lowered under (for cache validation):
    /// per variable the known dims plus a coarse sparsity bucket. The
    /// bucket (rather than the raw sparsity) keeps small nnz fluctuations
    /// from thrashing the plan cache while still recompiling when an
    /// intermediate drifts between sparse and dense regimes.
    pub fingerprint: Vec<(String, Option<(usize, usize, u8)>)>,
}

/// Coarse sparsity regime used in plan fingerprints: 0 = sparse (≤ 0.05,
/// the usual CSR-worthwhile threshold), 1 = medium (≤ 0.4), 2 = dense,
/// 3 = unknown.
pub fn sparsity_bucket(sparsity: Option<f64>) -> u8 {
    match sparsity {
        Some(s) if s <= 0.05 => 0,
        Some(s) if s <= 0.4 => 1,
        Some(_) => 2,
        None => 3,
    }
}

/// Compute the fingerprint of the current environment for a block.
pub fn env_fingerprint(
    block: &BasicBlock,
    env: &SizeEnv,
) -> Vec<(String, Option<(usize, usize, u8)>)> {
    let mut fp: Vec<(String, Option<(usize, usize, u8)>)> = block
        .live_ins()
        .into_iter()
        .map(|name| {
            let entry = env.get(&name).and_then(|s| {
                Some((
                    s.rows.value()?,
                    s.cols.value()?,
                    sparsity_bucket(s.sparsity),
                ))
            });
            (name, entry)
        })
        .collect();
    fp.sort();
    fp
}

/// Lower a basic block under the given entry sizes.
pub fn lower(block: &BasicBlock, env: &SizeEnv, config: &EngineConfig) -> Plan {
    let _lower_span = sysds_obs::Span::enter(sysds_obs::Phase::Lower, "lower");
    let mut dag = block.dag.clone();
    let roots: Vec<HopId> = block.roots.iter().map(Root::id).collect();
    // Size propagation, dynamic rewrites, re-propagation.
    {
        let _span = sysds_obs::Span::enter(sysds_obs::Phase::SizeProp, "propagate");
        propagate(&mut dag, env, config, &roots);
    }
    {
        let _span = sysds_obs::Span::enter(sysds_obs::Phase::Rewrite, "dynamic");
        rewrites::rewrite_dynamic(&mut dag);
    }
    let had_unknown = {
        let _span = sysds_obs::Span::enter(sysds_obs::Phase::SizeProp, "propagate");
        propagate(&mut dag, env, config, &roots)
    };
    // Fuse cell-wise chains once exact sizes are in; interior nodes of a
    // fused region lose their last consumer and drop out during the
    // root-reachable flattening below.
    if config.fusion {
        let _span = sysds_obs::Span::enter(sysds_obs::Phase::Rewrite, "fusion");
        super::fusion::fuse(&mut dag, &roots);
    }

    // Topological order from the roots, preserving root order so effects
    // execute in statement order.
    let mut slot_of: Vec<Option<usize>> = vec![None; dag.len()];
    let mut instrs: Vec<Instr> = Vec::new();
    let mut stack: Vec<(HopId, bool)> = Vec::new();
    for &root in roots.iter() {
        stack.push((root, false));
        while let Some((id, expanded)) = stack.pop() {
            if slot_of[id].is_some() {
                continue;
            }
            if expanded {
                let node = dag.node(id);
                let inputs: Vec<usize> = node
                    .inputs
                    .iter()
                    .map(|&i| slot_of[i].expect("inputs visited first"))
                    .collect();
                let out = instrs.len();
                slot_of[id] = Some(out);
                instrs.push(Instr {
                    op: node.op.clone(),
                    inputs,
                    out,
                    exec: node.exec,
                    size: node.size,
                });
            } else {
                stack.push((id, true));
                // Push children in reverse so the first input is visited first.
                for &i in dag.node(id).inputs.iter().rev() {
                    if slot_of[i].is_none() {
                        stack.push((i, false));
                    }
                }
            }
        }
    }

    let mut bindings = Vec::new();
    let mut result_slot = None;
    for root in &block.roots {
        match root {
            Root::Bind(name, id) => {
                let slot = slot_of[*id].expect("root lowered");
                if name == "__result" {
                    result_slot = Some(slot);
                } else {
                    bindings.push(PlanBinding {
                        name: name.clone(),
                        slot,
                    });
                }
            }
            Root::Effect(_) => {}
        }
    }

    Plan {
        nslots: instrs.len(),
        instrs,
        bindings,
        result_slot,
        had_unknown,
        fingerprint: env_fingerprint(block, env),
    }
}

/// Get the cached plan for a block, recompiling when entry sizes changed
/// (paper §2.3 (3): dynamic recompilation of basic blocks "to mitigate
/// initial unknowns").
pub fn plan_for(block: &BasicBlock, env: &SizeEnv, config: &EngineConfig) -> std::sync::Arc<Plan> {
    let mut guard = block.plan.lock();
    let mut trigger = None;
    if let Some(plan) = guard.as_ref() {
        if !config.dynamic_recompile {
            return plan.clone();
        }
        let fp = env_fingerprint(block, env);
        if !plan.had_unknown && plan.fingerprint == fp {
            return plan.clone();
        }
        // Attribute the recompile to its trigger: the previous plan was
        // lowered with unknown sizes, a live-in changed dimensions, or a
        // live-in drifted across a sparsity regime.
        trigger = Some(if plan.had_unknown {
            sysds_obs::RecompileTrigger::UnknownDims
        } else {
            let dims = |fp: &[(String, Option<(usize, usize, u8)>)]| -> Vec<(String, Option<(usize, usize)>)> {
                fp.iter()
                    .map(|(n, e)| (n.clone(), e.map(|(r, c, _)| (r, c))))
                    .collect()
            };
            if dims(&plan.fingerprint) != dims(&fp) {
                sysds_obs::RecompileTrigger::DimsChange
            } else {
                sysds_obs::RecompileTrigger::SparsityDrift
            }
        });
    }
    let dist_count = |p: &Plan| p.instrs.iter().filter(|i| i.exec == ExecType::Dist).count();
    let plan = if let Some(trigger) = trigger {
        let _span = sysds_obs::Span::enter(sysds_obs::Phase::Recompile, "recompile");
        if sysds_obs::stats_enabled() {
            sysds_obs::counters()
                .recompiles
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            sysds_obs::audit::record_recompile(trigger);
        }
        let old_dist = guard.as_ref().map(|p| dist_count(p));
        let plan = std::sync::Arc::new(lower(block, env, config));
        // The new sizes moved instructions across the CP/Dist memory-budget
        // boundary — record that separately: these recompiles change the
        // execution strategy, not just slot sizes.
        if sysds_obs::stats_enabled() && old_dist.is_some_and(|d| d != dist_count(&plan)) {
            sysds_obs::audit::record_recompile(sysds_obs::RecompileTrigger::BudgetCrossing);
        }
        plan
    } else {
        std::sync::Arc::new(lower(block, env, config))
    };
    *guard = Some(plan.clone());
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::{compile_expression, compile_program};
    use crate::parser::{ast::Expr, parse_program};
    use sysds_common::ScalarValue;

    fn size_env(entries: &[(&str, usize, usize)]) -> SizeEnv {
        let mut env = SizeEnv::default();
        for &(n, r, c) in entries {
            env.insert(n.to_string(), SizeInfo::matrix(r, c, Some(1.0)));
        }
        env
    }

    #[test]
    fn lowering_assigns_slots_in_dependency_order() {
        let block = compile_expression(&Expr::Binary(
            crate::parser::ast::BinOp::Add,
            Box::new(Expr::var("X")),
            Box::new(Expr::var("Y")),
        ))
        .unwrap();
        let plan = lower(
            &block,
            &size_env(&[("X", 2, 2), ("Y", 2, 2)]),
            &EngineConfig::default(),
        );
        assert_eq!(plan.instrs.len(), 3);
        for (i, instr) in plan.instrs.iter().enumerate() {
            assert_eq!(instr.out, i);
            for &inp in &instr.inputs {
                assert!(inp < i, "inputs must be computed before use");
            }
        }
        assert_eq!(plan.result_slot, Some(2));
    }

    #[test]
    fn plan_reused_when_sizes_stable() {
        let program =
            compile_program(&parse_program("y = t(X) %*% X").unwrap(), &|_| None).unwrap();
        let crate::compiler::Block::Basic(block) = &program.blocks[0] else {
            panic!()
        };
        let env = size_env(&[("X", 100, 5)]);
        let config = EngineConfig::default();
        let p1 = plan_for(block, &env, &config);
        let p2 = plan_for(block, &env, &config);
        assert!(std::sync::Arc::ptr_eq(&p1, &p2));
        // different sizes recompile
        let env2 = size_env(&[("X", 50, 5)]);
        let p3 = plan_for(block, &env2, &config);
        assert!(!std::sync::Arc::ptr_eq(&p1, &p3));
    }

    #[test]
    fn sparsity_regime_drift_recompiles_but_jitter_does_not() {
        let program =
            compile_program(&parse_program("y = t(X) %*% X").unwrap(), &|_| None).unwrap();
        let crate::compiler::Block::Basic(block) = &program.blocks[0] else {
            panic!()
        };
        let config = EngineConfig::default();
        let env_sp = |sp: f64| {
            let mut env = SizeEnv::default();
            env.insert("X".into(), SizeInfo::matrix(100, 5, Some(sp)));
            env
        };
        let p1 = plan_for(block, &env_sp(0.01), &config);
        // Jitter within the sparse bucket (≤ 0.05) reuses the plan.
        let p2 = plan_for(block, &env_sp(0.04), &config);
        assert!(std::sync::Arc::ptr_eq(&p1, &p2));
        // Drifting into the dense regime recompiles.
        let p3 = plan_for(block, &env_sp(0.9), &config);
        assert!(!std::sync::Arc::ptr_eq(&p1, &p3));
        assert_eq!(sparsity_bucket(Some(0.01)), sparsity_bucket(Some(0.04)));
        assert_ne!(sparsity_bucket(Some(0.01)), sparsity_bucket(Some(0.9)));
        assert_eq!(sparsity_bucket(None), 3);
    }

    #[test]
    fn recompilation_disabled_keeps_first_plan() {
        let program = compile_program(&parse_program("y = X + 1").unwrap(), &|_| None).unwrap();
        let crate::compiler::Block::Basic(block) = &program.blocks[0] else {
            panic!()
        };
        let config = EngineConfig {
            dynamic_recompile: false,
            ..EngineConfig::default()
        };
        let p1 = plan_for(block, &size_env(&[("X", 10, 10)]), &config);
        let p2 = plan_for(block, &size_env(&[("X", 99, 99)]), &config);
        assert!(std::sync::Arc::ptr_eq(&p1, &p2));
    }

    #[test]
    fn dynamic_tmv_rewrite_at_lowering() {
        let program =
            compile_program(&parse_program("b = t(X) %*% y").unwrap(), &|_| None).unwrap();
        let crate::compiler::Block::Basic(block) = &program.blocks[0] else {
            panic!()
        };
        // With y known as a vector, lowering fuses to tmv.
        let plan = lower(
            &block.clone(),
            &size_env(&[("X", 100, 5), ("y", 100, 1)]),
            &EngineConfig::default(),
        );
        assert!(plan.instrs.iter().any(|i| i.op == HopOp::Tmv));
        // With unknown sizes it stays a transpose + matmul.
        let plan2 = lower(
            &block.clone(),
            &SizeEnv::default(),
            &EngineConfig::default(),
        );
        assert!(plan2.instrs.iter().any(|i| i.op == HopOp::MatMul));
        assert!(plan2.had_unknown);
    }

    #[test]
    fn dce_drops_unused_nodes() {
        // 'dead' is bound but y only needs X + 1; both bindings are roots,
        // so both are lowered — but an unbound intermediate is dropped.
        let program = compile_program(
            &parse_program("tmp = t(X)\ntmp = X + 1\ny = tmp").unwrap(),
            &|_| None,
        )
        .unwrap();
        let crate::compiler::Block::Basic(block) = &program.blocks[0] else {
            panic!()
        };
        let plan = lower(block, &size_env(&[("X", 4, 4)]), &EngineConfig::default());
        // the transpose (overwritten binding) is not reachable from roots
        assert!(!plan.instrs.iter().any(|i| i.op == HopOp::Transpose));
    }

    #[test]
    fn effects_lowered_in_statement_order() {
        let program = compile_program(
            &parse_program("print(\"a\")\nx = 1 + 1\nprint(\"b\")").unwrap(),
            &|_| None,
        )
        .unwrap();
        let crate::compiler::Block::Basic(block) = &program.blocks[0] else {
            panic!()
        };
        let plan = lower(block, &SizeEnv::default(), &EngineConfig::default());
        let prints: Vec<usize> = plan
            .instrs
            .iter()
            .enumerate()
            .filter(|(_, i)| i.op == HopOp::Nary("print"))
            .map(|(k, _)| k)
            .collect();
        assert_eq!(prints.len(), 2);
        assert!(prints[0] < prints[1]);
        // operand of first print is the literal "a"
        let first = &plan.instrs[prints[0]];
        let lit = &plan.instrs[first.inputs[0]];
        assert_eq!(lit.op, HopOp::Lit(ScalarValue::Str("a".into())));
    }
}
