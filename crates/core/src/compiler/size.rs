//! Size propagation: dimensions and sparsity through HOP DAGs (paper §2.3).
//!
//! Sizes feed memory estimates, which in turn drive operator selection
//! (CP vs distributed) and flag blocks for dynamic recompilation when
//! unknown at compile time.

use super::hop::{Dim, ExecType, HopDag, HopId, HopOp, SizeInfo};
use sysds_common::hash::FxHashMap;
use sysds_common::{EngineConfig, ScalarValue};
use sysds_tensor::kernels::Direction;

/// Known sizes of live-in variables at block entry.
pub type SizeEnv = FxHashMap<String, SizeInfo>;

/// Propagate sizes through the DAG given entry sizes; annotates every node
/// and selects execution types against the memory budget. Returns whether
/// any reachable node has unknown dimensions (→ recompilation needed).
#[allow(clippy::needless_range_loop)] // ids index both dag and mark
pub fn propagate(dag: &mut HopDag, env: &SizeEnv, config: &EngineConfig, roots: &[HopId]) -> bool {
    let mark = dag.reachable(roots);
    let mut any_unknown = false;
    for id in 0..dag.len() {
        let size = infer(dag, id, env);
        dag.node_mut(id).size = size;
        let exec = select_exec(dag, id, config);
        dag.node_mut(id).exec = exec;
        if mark[id] && !size.fully_known() {
            any_unknown = true;
        }
    }
    any_unknown
}

fn lit_usize(dag: &HopDag, id: HopId) -> Option<usize> {
    match dag.as_lit(id)? {
        ScalarValue::I64(v) if *v >= 0 => Some(*v as usize),
        ScalarValue::F64(v) if *v >= 0.0 => Some(*v as usize),
        _ => None,
    }
}

fn infer(dag: &HopDag, id: HopId, env: &SizeEnv) -> SizeInfo {
    let node = dag.node(id);
    let input = |k: usize| dag.node(node.inputs[k]).size;
    match &node.op {
        HopOp::Lit(_) => SizeInfo::scalar(),
        HopOp::Var(name) => env.get(name).copied().unwrap_or_else(SizeInfo::unknown),
        HopOp::Unary(u) => {
            let s = input(0);
            let sparsity = if u.zero_preserving() {
                s.sparsity
            } else {
                Some(1.0)
            };
            SizeInfo { sparsity, ..s }
        }
        HopOp::Binary(b) => {
            let (l, r) = (input(0), input(1));
            // Scalar op scalar stays scalar; otherwise the matrix side wins.
            if l.scalar && r.scalar {
                return SizeInfo::scalar();
            }
            let shape = if l.scalar { r } else { l };
            let sparsity = if b.zero_preserving_left() || b.zero_preserving_right() {
                // worst case: min of the operand sparsities
                match (l.sparsity, r.sparsity) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (Some(a), None) | (None, Some(a)) => Some(a),
                    _ => None,
                }
            } else {
                Some(1.0)
            };
            SizeInfo {
                sparsity,
                scalar: false,
                ..shape
            }
        }
        HopOp::MatMul => {
            let (l, r) = (input(0), input(1));
            SizeInfo {
                rows: l.rows,
                cols: r.cols,
                sparsity: None,
                scalar: false,
            }
        }
        HopOp::Tsmm => {
            let s = input(0);
            SizeInfo {
                rows: s.cols,
                cols: s.cols,
                sparsity: None,
                scalar: false,
            }
        }
        HopOp::Tmv => {
            let s = input(0);
            SizeInfo {
                rows: s.cols,
                cols: Dim::Known(1),
                sparsity: None,
                scalar: false,
            }
        }
        HopOp::Transpose => {
            let s = input(0);
            SizeInfo {
                rows: s.cols,
                cols: s.rows,
                sparsity: s.sparsity,
                scalar: false,
            }
        }
        HopOp::Agg(_, dir) => {
            let s = input(0);
            match dir {
                Direction::Full => SizeInfo::scalar(),
                Direction::Row => SizeInfo {
                    rows: s.rows,
                    cols: Dim::Known(1),
                    sparsity: Some(1.0),
                    scalar: false,
                },
                Direction::Col => SizeInfo {
                    rows: Dim::Known(1),
                    cols: s.cols,
                    sparsity: Some(1.0),
                    scalar: false,
                },
            }
        }
        HopOp::Fused(t) => {
            // The cell-wise body has the shape of its (first) matrix leaf;
            // an aggregate root reshapes exactly like HopOp::Agg.
            let base = node
                .inputs
                .iter()
                .map(|&i| dag.node(i).size)
                .find(|s| !s.scalar)
                .unwrap_or_else(SizeInfo::unknown);
            match t.agg {
                None => SizeInfo {
                    sparsity: None,
                    scalar: false,
                    ..base
                },
                Some((_, Direction::Full)) => SizeInfo::scalar(),
                Some((_, Direction::Row)) => SizeInfo {
                    rows: base.rows,
                    cols: Dim::Known(1),
                    sparsity: Some(1.0),
                    scalar: false,
                },
                Some((_, Direction::Col)) => SizeInfo {
                    rows: Dim::Known(1),
                    cols: base.cols,
                    sparsity: Some(1.0),
                    scalar: false,
                },
            }
        }
        HopOp::Index => {
            // inputs: target, rl, rh, cl, ch (1-based inclusive literals or
            // dynamic scalars).
            let rl = lit_usize(dag, node.inputs[1]);
            let rh = lit_usize(dag, node.inputs[2]);
            let cl = lit_usize(dag, node.inputs[3]);
            let ch = lit_usize(dag, node.inputs[4]);
            let rows = match (rl, rh) {
                (Some(a), Some(b)) if b >= a => Dim::Known(b - a + 1),
                _ => Dim::Unknown,
            };
            let cols = match (cl, ch) {
                (Some(a), Some(b)) if b >= a => Dim::Known(b - a + 1),
                _ => Dim::Unknown,
            };
            SizeInfo {
                rows,
                cols,
                sparsity: input(0).sparsity,
                scalar: false,
            }
        }
        HopOp::LeftIndex => input(0),
        HopOp::Nary(name) => infer_nary(dag, id, name),
    }
}

fn infer_nary(dag: &HopDag, id: HopId, name: &str) -> SizeInfo {
    let node = dag.node(id);
    let input = |k: usize| dag.node(node.inputs[k]).size;
    match name {
        "rand" => {
            // rows, cols, min, max, sparsity, seed
            let rows = node.inputs.first().and_then(|&i| lit_usize(dag, i));
            let cols = node.inputs.get(1).and_then(|&i| lit_usize(dag, i));
            let sparsity = node
                .inputs
                .get(4)
                .and_then(|&i| dag.as_lit(i))
                .and_then(|v| v.as_f64().ok());
            SizeInfo {
                rows: rows.map_or(Dim::Unknown, Dim::Known),
                cols: cols.map_or(Dim::Unknown, Dim::Known),
                sparsity,
                scalar: false,
            }
        }
        "matrix" => {
            // data, rows, cols
            let rows = node.inputs.get(1).and_then(|&i| lit_usize(dag, i));
            let cols = node.inputs.get(2).and_then(|&i| lit_usize(dag, i));
            SizeInfo {
                rows: rows.map_or(Dim::Unknown, Dim::Known),
                cols: cols.map_or(Dim::Unknown, Dim::Known),
                sparsity: None,
                scalar: false,
            }
        }
        "seq" => {
            let f = node.inputs.first().and_then(|&i| lit_usize(dag, i));
            let t = node.inputs.get(1).and_then(|&i| lit_usize(dag, i));
            let step = node
                .inputs
                .get(2)
                .and_then(|&i| lit_usize(dag, i))
                .unwrap_or(1);
            let rows = match (f, t) {
                (Some(a), Some(b)) if b >= a && step > 0 => Dim::Known((b - a) / step + 1),
                _ => Dim::Unknown,
            };
            SizeInfo {
                rows,
                cols: Dim::Known(1),
                sparsity: Some(1.0),
                scalar: false,
            }
        }
        "read" => {
            // consult the .mtd sidecar when the path is a literal
            if let Some(ScalarValue::Str(path)) = node.inputs.first().and_then(|&i| dag.as_lit(i)) {
                if let Ok(Some(meta)) = sysds_io::Metadata::load(path) {
                    return SizeInfo::matrix(meta.rows, meta.cols, Some(meta.sparsity()));
                }
            }
            SizeInfo::unknown()
        }
        "cbind" => {
            let (l, r) = (input(0), input(1));
            let cols = match (l.cols.value(), r.cols.value()) {
                (Some(a), Some(b)) => Dim::Known(a + b),
                _ => Dim::Unknown,
            };
            SizeInfo {
                rows: l.rows,
                cols,
                sparsity: None,
                scalar: false,
            }
        }
        "rbind" => {
            let (l, r) = (input(0), input(1));
            let rows = match (l.rows.value(), r.rows.value()) {
                (Some(a), Some(b)) => Dim::Known(a + b),
                _ => Dim::Unknown,
            };
            SizeInfo {
                rows,
                cols: l.cols,
                sparsity: None,
                scalar: false,
            }
        }
        "solve" => {
            let (a, b) = (input(0), input(1));
            SizeInfo {
                rows: a.cols,
                cols: b.cols,
                sparsity: Some(1.0),
                scalar: false,
            }
        }
        "inv" | "cholesky" => input(0),
        "diag" => {
            let s = input(0);
            match s.cols.value() {
                Some(1) => match s.rows.value() {
                    Some(n) => {
                        SizeInfo::matrix(n, n, s.rows.value().map(|n| 1.0 / n.max(1) as f64))
                    }
                    None => SizeInfo::unknown(),
                },
                Some(_) => SizeInfo {
                    rows: s.rows,
                    cols: Dim::Known(1),
                    sparsity: Some(1.0),
                    scalar: false,
                },
                None => SizeInfo::unknown(),
            }
        }
        "nrow" | "ncol" | "length" | "det" | "trace" | "as.scalar" | "as.integer" | "as.double"
        | "as.logical" | "nnz" => SizeInfo::scalar(),
        "toString" => SizeInfo::scalar(),
        "print" | "write" | "stop" => SizeInfo::scalar(),
        "rowIndexMax" => {
            let s = input(0);
            SizeInfo {
                rows: s.rows,
                cols: Dim::Known(1),
                sparsity: Some(1.0),
                scalar: false,
            }
        }
        "cumsum" | "cumprod" | "rev" | "replace" => input(0),
        "order" => input(0),
        "removeEmpty" => SizeInfo::unknown(), // data-dependent output size
        "ifelse" => input(1),
        "as.matrix" => {
            let s = input(0);
            if s.scalar {
                SizeInfo::matrix(1, 1, Some(1.0))
            } else {
                s
            }
        }
        _ => SizeInfo::unknown(),
    }
}

/// Operators the simulated distributed backend supports.
fn dist_supported(op: &HopOp) -> bool {
    matches!(
        op,
        HopOp::MatMul
            | HopOp::Tsmm
            | HopOp::Transpose
            | HopOp::Binary(_)
            | HopOp::Agg(_, Direction::Full)
    )
}

fn select_exec(dag: &HopDag, id: HopId, config: &EngineConfig) -> ExecType {
    let node = dag.node(id);
    if !dist_supported(&node.op) {
        return ExecType::Cp;
    }
    // CP if the operation's footprint (inputs + output) fits in the budget;
    // unknown sizes stay CP until recompilation learns them (optimistic,
    // like SystemML's default with recompilation enabled).
    let Some(mut footprint) = node.size.memory_estimate() else {
        return ExecType::Cp;
    };
    for &i in &node.inputs {
        let Some(m) = dag.node(i).size.memory_estimate() else {
            return ExecType::Cp;
        };
        footprint = footprint.saturating_add(m);
    }
    if footprint > config.memory_budget {
        ExecType::Dist
    } else {
        ExecType::Cp
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysds_tensor::kernels::BinaryOp;

    fn env_with(name: &str, rows: usize, cols: usize) -> SizeEnv {
        let mut env = SizeEnv::default();
        env.insert(name.to_string(), SizeInfo::matrix(rows, cols, Some(1.0)));
        env
    }

    #[test]
    fn matmul_size_rule() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let y = dag.add(HopOp::Var("Y".into()), vec![]);
        let mm = dag.add(HopOp::MatMul, vec![x, y]);
        let mut env = env_with("X", 10, 5);
        env.insert("Y".into(), SizeInfo::matrix(5, 3, Some(1.0)));
        let unknown = propagate(&mut dag, &env, &EngineConfig::default(), &[mm]);
        assert!(!unknown);
        assert_eq!(dag.node(mm).size.rows, Dim::Known(10));
        assert_eq!(dag.node(mm).size.cols, Dim::Known(3));
    }

    #[test]
    fn tsmm_and_tmv_sizes() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let g = dag.add(HopOp::Tsmm, vec![x]);
        let v = dag.add(HopOp::Tmv, vec![x, x]);
        propagate(
            &mut dag,
            &env_with("X", 100, 7),
            &EngineConfig::default(),
            &[g, v],
        );
        assert_eq!(dag.node(g).size.rows, Dim::Known(7));
        assert_eq!(dag.node(g).size.cols, Dim::Known(7));
        assert_eq!(dag.node(v).size.rows, Dim::Known(7));
        assert_eq!(dag.node(v).size.cols, Dim::Known(1));
    }

    #[test]
    fn unknown_inputs_flag_recompile() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let t = dag.add(HopOp::Transpose, vec![x]);
        let unknown = propagate(
            &mut dag,
            &SizeEnv::default(),
            &EngineConfig::default(),
            &[t],
        );
        assert!(unknown);
        assert_eq!(dag.node(t).size.rows, Dim::Unknown);
    }

    #[test]
    fn rand_literal_dims_known() {
        let mut dag = HopDag::new();
        let r = dag.lit(ScalarValue::I64(100));
        let c = dag.lit(ScalarValue::I64(10));
        let mn = dag.lit(ScalarValue::F64(0.0));
        let mx = dag.lit(ScalarValue::F64(1.0));
        let sp = dag.lit(ScalarValue::F64(0.1));
        let seed = dag.lit(ScalarValue::I64(7));
        let rand = dag.add(HopOp::Nary("rand"), vec![r, c, mn, mx, sp, seed]);
        let unknown = propagate(
            &mut dag,
            &SizeEnv::default(),
            &EngineConfig::default(),
            &[rand],
        );
        assert!(!unknown);
        let s = dag.node(rand).size;
        assert_eq!(s.rows, Dim::Known(100));
        assert_eq!(s.sparsity, Some(0.1));
    }

    #[test]
    fn scalar_binary_stays_scalar() {
        let mut dag = HopDag::new();
        let a = dag.lit(ScalarValue::F64(1.0));
        let b = dag.lit(ScalarValue::F64(2.0));
        let s = dag.add(HopOp::Binary(BinaryOp::Add), vec![a, b]);
        propagate(
            &mut dag,
            &SizeEnv::default(),
            &EngineConfig::default(),
            &[s],
        );
        assert!(dag.node(s).size.scalar);
    }

    #[test]
    fn exec_selection_against_budget() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let g = dag.add(HopOp::Tsmm, vec![x]);
        // Tiny budget forces distributed execution.
        let config = EngineConfig::default().budget(1024);
        propagate(&mut dag, &env_with("X", 1000, 50), &config, &[g]);
        assert_eq!(dag.node(g).exec, ExecType::Dist);
        // Large budget keeps it local.
        let config = EngineConfig::default().budget(1 << 30);
        propagate(&mut dag, &env_with("X", 1000, 50), &config, &[g]);
        assert_eq!(dag.node(g).exec, ExecType::Cp);
    }

    #[test]
    fn unsupported_ops_never_distributed() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let inv = dag.add(HopOp::Nary("inv"), vec![x]);
        let config = EngineConfig::default().budget(1);
        propagate(&mut dag, &env_with("X", 1000, 1000), &config, &[inv]);
        assert_eq!(dag.node(inv).exec, ExecType::Cp);
    }

    #[test]
    fn cbind_adds_columns() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let y = dag.add(HopOp::Var("Y".into()), vec![]);
        let cb = dag.add(HopOp::Nary("cbind"), vec![x, y]);
        let mut env = env_with("X", 10, 5);
        env.insert("Y".into(), SizeInfo::matrix(10, 2, Some(1.0)));
        propagate(&mut dag, &env, &EngineConfig::default(), &[cb]);
        assert_eq!(dag.node(cb).size.cols, Dim::Known(7));
    }

    #[test]
    fn transpose_chain_propagates_dims_and_sparsity() {
        // t(t(X)) %*% X : dims and sparsity must survive a transpose chain.
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let t1 = dag.add(HopOp::Transpose, vec![x]);
        let t2 = dag.add(HopOp::Transpose, vec![t1]);
        let mm = dag.add(HopOp::MatMul, vec![t1, x]);
        let mut env = SizeEnv::default();
        env.insert("X".into(), SizeInfo::matrix(20, 6, Some(0.25)));
        let unknown = propagate(&mut dag, &env, &EngineConfig::default(), &[t2, mm]);
        assert!(!unknown);
        assert_eq!(dag.node(t1).size.rows, Dim::Known(6));
        assert_eq!(dag.node(t1).size.cols, Dim::Known(20));
        assert_eq!(dag.node(t1).size.sparsity, Some(0.25));
        assert_eq!(dag.node(t2).size.rows, Dim::Known(20));
        assert_eq!(dag.node(t2).size.cols, Dim::Known(6));
        assert_eq!(dag.node(mm).size.rows, Dim::Known(6));
        assert_eq!(dag.node(mm).size.cols, Dim::Known(6));
    }

    #[test]
    fn elementwise_chain_takes_min_sparsity() {
        // (X * Y) + Z : multiply is zero-preserving (min sparsity), the
        // subsequent add with a dense operand densifies the worst case via
        // min(sp, 1.0) = sp of the sparse side.
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let y = dag.add(HopOp::Var("Y".into()), vec![]);
        let mul = dag.add(HopOp::Binary(BinaryOp::Mul), vec![x, y]);
        let mut env = SizeEnv::default();
        env.insert("X".into(), SizeInfo::matrix(8, 8, Some(0.5)));
        env.insert("Y".into(), SizeInfo::matrix(8, 8, Some(0.1)));
        let unknown = propagate(&mut dag, &env, &EngineConfig::default(), &[mul]);
        assert!(!unknown);
        let s = dag.node(mul).size;
        assert_eq!(s.rows, Dim::Known(8));
        assert_eq!(s.cols, Dim::Known(8));
        assert_eq!(s.sparsity, Some(0.1));
    }

    #[test]
    fn aggregation_chain_shapes() {
        // colSums(X) -> 1xC, then rowSums of that -> 1x1 (matrix), and a
        // full-aggregate sum(X) -> scalar.
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let cs = dag.add(
            HopOp::Agg(sysds_tensor::kernels::AggFn::Sum, Direction::Col),
            vec![x],
        );
        let rs = dag.add(
            HopOp::Agg(sysds_tensor::kernels::AggFn::Sum, Direction::Row),
            vec![cs],
        );
        let full = dag.add(
            HopOp::Agg(sysds_tensor::kernels::AggFn::Sum, Direction::Full),
            vec![x],
        );
        let unknown = propagate(
            &mut dag,
            &env_with("X", 50, 9),
            &EngineConfig::default(),
            &[rs, full],
        );
        assert!(!unknown);
        assert_eq!(dag.node(cs).size.rows, Dim::Known(1));
        assert_eq!(dag.node(cs).size.cols, Dim::Known(9));
        assert_eq!(dag.node(rs).size.rows, Dim::Known(1));
        assert_eq!(dag.node(rs).size.cols, Dim::Known(1));
        assert!(dag.node(full).size.scalar);
    }

    #[test]
    fn exec_selection_at_exact_budget_boundary() {
        // tsmm(X) with X 1000x50 dense: footprint = est(X) + est(t(X)X).
        let input_est = SizeInfo::matrix(1000, 50, Some(1.0))
            .memory_estimate()
            .unwrap();
        let out_est = SizeInfo::matrix(50, 50, None).memory_estimate().unwrap();
        let footprint = input_est + out_est;
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let g = dag.add(HopOp::Tsmm, vec![x]);
        // Budget exactly equal to the footprint: fits, stays CP.
        let config = EngineConfig::default().budget(footprint);
        propagate(&mut dag, &env_with("X", 1000, 50), &config, &[g]);
        assert_eq!(dag.node(g).exec, ExecType::Cp);
        // One byte below: crosses the budget, goes distributed.
        let config = EngineConfig::default().budget(footprint - 1);
        propagate(&mut dag, &env_with("X", 1000, 50), &config, &[g]);
        assert_eq!(dag.node(g).exec, ExecType::Dist);
    }

    #[test]
    fn unknown_dims_stay_cp_even_under_tiny_budget() {
        // Unknown sizes must not be treated as infinite: optimistic CP until
        // dynamic recompilation learns the real dims.
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let g = dag.add(HopOp::Tsmm, vec![x]);
        let config = EngineConfig::default().budget(1);
        let unknown = propagate(&mut dag, &SizeEnv::default(), &config, &[g]);
        assert!(unknown);
        assert_eq!(dag.node(g).size.memory_estimate(), None);
        assert_eq!(dag.node(g).exec, ExecType::Cp);
    }

    #[test]
    fn indexing_with_literal_bounds() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let l1 = dag.lit(ScalarValue::I64(2));
        let l2 = dag.lit(ScalarValue::I64(4));
        let c1 = dag.lit(ScalarValue::I64(1));
        let c2 = dag.lit(ScalarValue::I64(1));
        let ix = dag.add(HopOp::Index, vec![x, l1, l2, c1, c2]);
        propagate(
            &mut dag,
            &env_with("X", 10, 5),
            &EngineConfig::default(),
            &[ix],
        );
        assert_eq!(dag.node(ix).size.rows, Dim::Known(3));
        assert_eq!(dag.node(ix).size.cols, Dim::Known(1));
    }
}
