//! HOP rewrites: constant folding, algebraic simplification, and fusion.
//!
//! Two rounds, as in SystemML:
//! * **static** rewrites need no size information — constant folding,
//!   double-transpose elimination, identity ops (`X*1`, `X+0`, `X^1`),
//!   and the `t(X) %*% X` → `tsmm` fusion;
//! * **dynamic** rewrites use propagated sizes — `t(X) %*% y` → fused
//!   `tmv` when `y` is a column vector. They re-run at dynamic
//!   recompilation when sizes first become known.

use super::hop::{Dim, HopDag, HopId, HopOp};
use sysds_common::ScalarValue;
use sysds_tensor::kernels::{BinaryOp, UnaryOp};

/// Apply static rewrites; returns remapped roots.
pub fn rewrite_static(dag: &mut HopDag, roots: &[HopId]) -> Vec<HopId> {
    let mut map: Vec<HopId> = (0..dag.len()).collect();
    for id in 0..dag.len() {
        // Remap inputs through earlier replacements first.
        let inputs: Vec<HopId> = dag.node(id).inputs.iter().map(|&i| map[i]).collect();
        dag.node_mut(id).inputs = inputs.clone();

        let replacement = constant_fold(dag, id)
            .or_else(|| double_transpose(dag, id))
            .or_else(|| identity_op(dag, id))
            .or_else(|| transpose_invariant_agg(dag, id))
            .or_else(|| sigmoid_fusion(dag, id))
            .or_else(|| tsmm_fusion(dag, id));
        if let Some(rep) = replacement {
            map[id] = rep;
        }
    }
    roots.iter().map(|&r| map[r]).collect()
}

/// Apply size-dependent rewrites (after size propagation).
pub fn rewrite_dynamic(dag: &mut HopDag) {
    for id in 0..dag.len() {
        tmv_fusion(dag, id);
    }
}

/// Fold `Binary(lit, lit)` and `Unary(lit)` into literals.
fn constant_fold(dag: &mut HopDag, id: HopId) -> Option<HopId> {
    let node = dag.node(id);
    match (&node.op, node.inputs.as_slice()) {
        (HopOp::Binary(op), &[a, b]) => {
            let (va, vb) = (dag.as_lit(a)?, dag.as_lit(b)?);
            // String concatenation via `+`.
            if let (BinaryOp::Add, ScalarValue::Str(x), y) = (*op, va, vb) {
                let folded = ScalarValue::Str(format!("{x}{}", y.to_display_string()));
                return Some(dag.lit(folded));
            }
            if let (BinaryOp::Add, x, ScalarValue::Str(y)) = (*op, va, vb) {
                let folded = ScalarValue::Str(format!("{}{y}", x.to_display_string()));
                return Some(dag.lit(folded));
            }
            let (x, y) = (va.as_f64().ok()?, vb.as_f64().ok()?);
            let v = op.apply(x, y);
            let folded = fold_value(*op, va, vb, v);
            Some(dag.lit(folded))
        }
        (HopOp::Unary(op), &[a]) => {
            let va = dag.as_lit(a)?;
            let x = va.as_f64().ok()?;
            let v = op.apply(x);
            let folded = match (op, va) {
                (UnaryOp::Neg, ScalarValue::I64(i)) => ScalarValue::I64(-i),
                (UnaryOp::Not, _) => ScalarValue::Bool(v != 0.0),
                _ => ScalarValue::F64(v),
            };
            Some(dag.lit(folded))
        }
        _ => None,
    }
}

fn fold_value(op: BinaryOp, a: &ScalarValue, b: &ScalarValue, v: f64) -> ScalarValue {
    use BinaryOp::*;
    match op {
        Eq | Neq | Lt | Le | Gt | Ge | And | Or => ScalarValue::Bool(v != 0.0),
        Add | Sub | Mul | IntDiv | Mod | Min | Max
            if matches!(a, ScalarValue::I64(_) | ScalarValue::Bool(_))
                && matches!(b, ScalarValue::I64(_) | ScalarValue::Bool(_))
                && v.fract() == 0.0 =>
        {
            ScalarValue::I64(v as i64)
        }
        _ => ScalarValue::F64(v),
    }
}

/// `t(t(X))` → `X`.
fn double_transpose(dag: &HopDag, id: HopId) -> Option<HopId> {
    let node = dag.node(id);
    if node.op != HopOp::Transpose {
        return None;
    }
    let inner = dag.node(node.inputs[0]);
    if inner.op == HopOp::Transpose {
        Some(inner.inputs[0])
    } else {
        None
    }
}

/// `X*1`, `1*X`, `X+0`, `0+X`, `X-0`, `X/1`, `X^1` → `X`.
fn identity_op(dag: &HopDag, id: HopId) -> Option<HopId> {
    let node = dag.node(id);
    let HopOp::Binary(op) = node.op else {
        return None;
    };
    let &[a, b] = node.inputs.as_slice() else {
        return None;
    };
    let lit_is = |x: HopId, v: f64| dag.as_lit(x).and_then(|l| l.as_f64().ok()) == Some(v);
    match op {
        BinaryOp::Mul if lit_is(b, 1.0) => Some(a),
        BinaryOp::Mul if lit_is(a, 1.0) => Some(b),
        BinaryOp::Add if lit_is(b, 0.0) => Some(a),
        BinaryOp::Add if lit_is(a, 0.0) => Some(b),
        BinaryOp::Sub if lit_is(b, 0.0) => Some(a),
        BinaryOp::Div if lit_is(b, 1.0) => Some(a),
        BinaryOp::Pow if lit_is(b, 1.0) => Some(a),
        _ => None,
    }
}

/// Full aggregates are invariant under transpose: `sum(t(X))` → `sum(X)`
/// (same for mean/min/max/var/sd/sumSq).
fn transpose_invariant_agg(dag: &mut HopDag, id: HopId) -> Option<HopId> {
    let node = dag.node(id);
    let HopOp::Agg(f, dir) = node.op else {
        return None;
    };
    if dir != sysds_tensor::kernels::Direction::Full {
        return None;
    }
    let inner = dag.node(node.inputs[0]);
    if inner.op == HopOp::Transpose {
        let x = inner.inputs[0];
        dag.replace(id, HopOp::Agg(f, dir), vec![x]);
    }
    None // structural replacement
}

/// Fuse the logistic pattern `1 / (1 + exp(-X))` into a single `sigmoid`
/// operator (paper §3.4, operator fusion).
fn sigmoid_fusion(dag: &mut HopDag, id: HopId) -> Option<HopId> {
    let node = dag.node(id);
    let HopOp::Binary(BinaryOp::Div) = node.op else {
        return None;
    };
    let &[one_a, denom] = node.inputs.as_slice() else {
        return None;
    };
    let lit_is_one = |x: HopId| dag.as_lit(x).and_then(|l| l.as_f64().ok()) == Some(1.0);
    if !lit_is_one(one_a) {
        return None;
    }
    let dnode = dag.node(denom);
    let HopOp::Binary(BinaryOp::Add) = dnode.op else {
        return None;
    };
    let &[l, r] = dnode.inputs.as_slice() else {
        return None;
    };
    // accept 1 + exp(-x) in either operand order
    let (one_b, exp_id) = if lit_is_one(l) { (l, r) } else { (r, l) };
    if !lit_is_one(one_b) {
        return None;
    }
    let enode = dag.node(exp_id);
    if enode.op != HopOp::Unary(UnaryOp::Exp) {
        return None;
    }
    let nnode = dag.node(enode.inputs[0]);
    if nnode.op != HopOp::Unary(UnaryOp::Neg) {
        return None;
    }
    let x = nnode.inputs[0];
    dag.replace(id, HopOp::Unary(UnaryOp::Sigmoid), vec![x]);
    None // structural replacement
}

/// `t(X) %*% X` → `tsmm(X)` (in place).
fn tsmm_fusion(dag: &mut HopDag, id: HopId) -> Option<HopId> {
    let node = dag.node(id);
    if node.op != HopOp::MatMul {
        return None;
    }
    let &[l, r] = node.inputs.as_slice() else {
        return None;
    };
    let lnode = dag.node(l);
    if lnode.op == HopOp::Transpose && lnode.inputs[0] == r {
        dag.replace(id, HopOp::Tsmm, vec![r]);
    }
    None // structural replacement, not an alias
}

/// `t(X) %*% y` → `tmv(X, y)` when `y` is known to be a column vector.
fn tmv_fusion(dag: &mut HopDag, id: HopId) {
    let node = dag.node(id);
    if node.op != HopOp::MatMul {
        return;
    }
    let &[l, r] = node.inputs.as_slice() else {
        return;
    };
    let lnode = dag.node(l);
    if lnode.op != HopOp::Transpose {
        return;
    }
    let x = lnode.inputs[0];
    if dag.node(r).size.cols == Dim::Known(1) && !dag.node(r).size.scalar {
        dag.replace(id, HopOp::Tmv, vec![x, r]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compiler::hop::SizeInfo;
    use crate::compiler::size::{propagate, SizeEnv};
    use sysds_common::EngineConfig;

    #[test]
    fn folds_arithmetic() {
        let mut dag = HopDag::new();
        let a = dag.lit(ScalarValue::I64(2));
        let b = dag.lit(ScalarValue::I64(3));
        let sum = dag.add(HopOp::Binary(BinaryOp::Add), vec![a, b]);
        let roots = rewrite_static(&mut dag, &[sum]);
        assert_eq!(dag.as_lit(roots[0]), Some(&ScalarValue::I64(5)));
    }

    #[test]
    fn folds_comparisons_to_bool() {
        let mut dag = HopDag::new();
        let a = dag.lit(ScalarValue::I64(2));
        let b = dag.lit(ScalarValue::I64(3));
        let cmp = dag.add(HopOp::Binary(BinaryOp::Lt), vec![a, b]);
        let roots = rewrite_static(&mut dag, &[cmp]);
        assert_eq!(dag.as_lit(roots[0]), Some(&ScalarValue::Bool(true)));
    }

    #[test]
    fn folds_string_concat() {
        let mut dag = HopDag::new();
        let a = dag.lit(ScalarValue::Str("k=".into()));
        let b = dag.lit(ScalarValue::I64(7));
        let cat = dag.add(HopOp::Binary(BinaryOp::Add), vec![a, b]);
        let roots = rewrite_static(&mut dag, &[cat]);
        assert_eq!(dag.as_lit(roots[0]), Some(&ScalarValue::Str("k=7".into())));
    }

    #[test]
    fn folds_transitively() {
        // (1 + 2) * 3 folds to 9
        let mut dag = HopDag::new();
        let a = dag.lit(ScalarValue::I64(1));
        let b = dag.lit(ScalarValue::I64(2));
        let sum = dag.add(HopOp::Binary(BinaryOp::Add), vec![a, b]);
        let c = dag.lit(ScalarValue::I64(3));
        let prod = dag.add(HopOp::Binary(BinaryOp::Mul), vec![sum, c]);
        let roots = rewrite_static(&mut dag, &[prod]);
        assert_eq!(dag.as_lit(roots[0]), Some(&ScalarValue::I64(9)));
    }

    #[test]
    fn eliminates_double_transpose() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let t1 = dag.add(HopOp::Transpose, vec![x]);
        let t2 = dag.add(HopOp::Transpose, vec![t1]);
        let roots = rewrite_static(&mut dag, &[t2]);
        assert_eq!(roots[0], x);
    }

    #[test]
    fn identity_ops_eliminated() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let one = dag.lit(ScalarValue::F64(1.0));
        let zero = dag.lit(ScalarValue::F64(0.0));
        let m = dag.add(HopOp::Binary(BinaryOp::Mul), vec![x, one]);
        let a = dag.add(HopOp::Binary(BinaryOp::Add), vec![m, zero]);
        let roots = rewrite_static(&mut dag, &[a]);
        assert_eq!(roots[0], x);
    }

    #[test]
    fn tsmm_fused_from_pattern() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let t = dag.add(HopOp::Transpose, vec![x]);
        let mm = dag.add(HopOp::MatMul, vec![t, x]);
        let roots = rewrite_static(&mut dag, &[mm]);
        assert_eq!(dag.node(roots[0]).op, HopOp::Tsmm);
        assert_eq!(dag.node(roots[0]).inputs, vec![x]);
    }

    #[test]
    fn tmv_fused_when_vector_known() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let y = dag.add(HopOp::Var("y".into()), vec![]);
        let t = dag.add(HopOp::Transpose, vec![x]);
        let mm = dag.add(HopOp::MatMul, vec![t, y]);
        let mut env = SizeEnv::default();
        env.insert("X".into(), SizeInfo::matrix(100, 5, Some(1.0)));
        env.insert("y".into(), SizeInfo::matrix(100, 1, Some(1.0)));
        propagate(&mut dag, &env, &EngineConfig::default(), &[mm]);
        rewrite_dynamic(&mut dag);
        assert_eq!(dag.node(mm).op, HopOp::Tmv);
        assert_eq!(dag.node(mm).inputs, vec![x, y]);

        // Without size knowledge the pattern is left alone.
        let mut dag2 = HopDag::new();
        let x2 = dag2.add(HopOp::Var("X".into()), vec![]);
        let y2 = dag2.add(HopOp::Var("y".into()), vec![]);
        let t2 = dag2.add(HopOp::Transpose, vec![x2]);
        let mm2 = dag2.add(HopOp::MatMul, vec![t2, y2]);
        propagate(
            &mut dag2,
            &SizeEnv::default(),
            &EngineConfig::default(),
            &[mm2],
        );
        rewrite_dynamic(&mut dag2);
        assert_eq!(dag2.node(mm2).op, HopOp::MatMul);
    }

    #[test]
    fn tsmm_not_fused_for_different_operands() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let y = dag.add(HopOp::Var("Y".into()), vec![]);
        let t = dag.add(HopOp::Transpose, vec![x]);
        let mm = dag.add(HopOp::MatMul, vec![t, y]);
        rewrite_static(&mut dag, &[mm]);
        assert_eq!(dag.node(mm).op, HopOp::MatMul);
    }

    #[test]
    fn sum_of_transpose_drops_transpose() {
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let t = dag.add(HopOp::Transpose, vec![x]);
        let s = dag.add(
            HopOp::Agg(
                sysds_tensor::kernels::AggFn::Sum,
                sysds_tensor::kernels::Direction::Full,
            ),
            vec![t],
        );
        rewrite_static(&mut dag, &[s]);
        assert_eq!(dag.node(s).inputs, vec![x]);
        // row aggregates are NOT transpose-invariant and stay untouched
        let r = dag.add(
            HopOp::Agg(
                sysds_tensor::kernels::AggFn::Sum,
                sysds_tensor::kernels::Direction::Row,
            ),
            vec![t],
        );
        rewrite_static(&mut dag, &[r]);
        assert_eq!(dag.node(r).inputs, vec![t]);
    }

    #[test]
    fn sigmoid_pattern_fused() {
        // 1 / (1 + exp(-X)) → sigmoid(X)
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let neg = dag.add(HopOp::Unary(UnaryOp::Neg), vec![x]);
        let ex = dag.add(HopOp::Unary(UnaryOp::Exp), vec![neg]);
        let one = dag.lit(ScalarValue::F64(1.0));
        let denom = dag.add(HopOp::Binary(BinaryOp::Add), vec![one, ex]);
        let div = dag.add(HopOp::Binary(BinaryOp::Div), vec![one, denom]);
        rewrite_static(&mut dag, &[div]);
        assert_eq!(dag.node(div).op, HopOp::Unary(UnaryOp::Sigmoid));
        assert_eq!(dag.node(div).inputs, vec![x]);
    }

    #[test]
    fn sigmoid_pattern_not_fused_for_other_constants() {
        // 2 / (1 + exp(-X)) must stay a division
        let mut dag = HopDag::new();
        let x = dag.add(HopOp::Var("X".into()), vec![]);
        let neg = dag.add(HopOp::Unary(UnaryOp::Neg), vec![x]);
        let ex = dag.add(HopOp::Unary(UnaryOp::Exp), vec![neg]);
        let one = dag.lit(ScalarValue::F64(1.0));
        let two = dag.lit(ScalarValue::F64(2.0));
        let denom = dag.add(HopOp::Binary(BinaryOp::Add), vec![one, ex]);
        let div = dag.add(HopOp::Binary(BinaryOp::Div), vec![two, denom]);
        rewrite_static(&mut dag, &[div]);
        assert_eq!(dag.node(div).op, HopOp::Binary(BinaryOp::Div));
    }

    #[test]
    fn unary_fold() {
        let mut dag = HopDag::new();
        let a = dag.lit(ScalarValue::F64(4.0));
        let s = dag.add(HopOp::Unary(UnaryOp::Sqrt), vec![a]);
        let roots = rewrite_static(&mut dag, &[s]);
        assert_eq!(dag.as_lit(roots[0]), Some(&ScalarValue::F64(2.0)));
        // integer negation stays integer
        let i = dag.lit(ScalarValue::I64(3));
        let n = dag.add(HopOp::Unary(UnaryOp::Neg), vec![i]);
        let roots = rewrite_static(&mut dag, &[n]);
        assert_eq!(dag.as_lit(roots[0]), Some(&ScalarValue::I64(-3)));
    }
}
