//! Abstract syntax tree of DML programs.

use sysds_common::ScalarValue;

/// Binary operators in expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Pow,
    Mod,
    IntDiv,
    MatMul,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// A (possibly named) call argument: `f(X, reg=0.1)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Arg {
    pub name: Option<String>,
    pub value: Expr,
}

/// An index expression for one dimension of `X[rows, cols]`.
#[derive(Debug, Clone, PartialEq)]
pub enum IndexExpr {
    /// Dimension untouched (empty slot): `X[, 2]`.
    All,
    /// A single (1-based) position.
    Single(Box<Expr>),
    /// An inclusive (1-based) range `a:b`.
    Range(Box<Expr>, Box<Expr>),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Const(ScalarValue),
    Var(String),
    Unary(UnOp, Box<Expr>),
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `a:b` sequence (used in loops and as seq shorthand).
    Seq(Box<Expr>, Box<Expr>),
    /// Function or builtin call.
    Call {
        name: String,
        args: Vec<Arg>,
    },
    /// Right indexing `X[rows, cols]`.
    Index {
        target: Box<Expr>,
        rows: IndexExpr,
        cols: IndexExpr,
    },
}

/// Statements.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `x = expr`
    Assign {
        target: String,
        value: Expr,
    },
    /// `X[i, j] = expr` (left indexing)
    IndexAssign {
        target: String,
        rows: IndexExpr,
        cols: IndexExpr,
        value: Expr,
    },
    /// `[a, b] = f(...)` (multi-assignment from a multi-return call)
    MultiAssign {
        targets: Vec<String>,
        value: Expr,
    },
    /// Bare call executed for effect: `print(...)`, `write(...)`.
    ExprStmt(Expr),
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    For {
        var: String,
        from: Expr,
        to: Expr,
        step: Option<Expr>,
        body: Vec<Stmt>,
    },
    Parfor {
        var: String,
        from: Expr,
        to: Expr,
        body: Vec<Stmt>,
    },
    While {
        cond: Expr,
        body: Vec<Stmt>,
    },
}

/// A function definition: `name = function(params) return (outs) { body }`.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionDef {
    pub name: String,
    /// `(param name, declared type, default value)`
    pub params: Vec<(String, String, Option<Expr>)>,
    /// Output variable names (bound inside the body).
    pub outputs: Vec<String>,
    pub body: Vec<Stmt>,
}

/// A full DML program: top-level statements plus function definitions.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    pub functions: Vec<FunctionDef>,
    pub statements: Vec<Stmt>,
}

impl Expr {
    /// Convenience constructor for f64 literals (tests and rewrites).
    pub fn num(v: f64) -> Expr {
        Expr::Const(ScalarValue::F64(v))
    }

    /// Convenience constructor for integer literals.
    pub fn int(v: i64) -> Expr {
        Expr::Const(ScalarValue::I64(v))
    }

    /// Convenience constructor for variable references.
    pub fn var(name: &str) -> Expr {
        Expr::Var(name.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Expr::num(1.5), Expr::Const(ScalarValue::F64(1.5)));
        assert_eq!(Expr::int(3), Expr::Const(ScalarValue::I64(3)));
        assert_eq!(Expr::var("x"), Expr::Var("x".into()));
    }

    #[test]
    fn ast_equality() {
        let a = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::var("x")),
            Box::new(Expr::num(1.0)),
        );
        let b = Expr::Binary(
            BinOp::Add,
            Box::new(Expr::var("x")),
            Box::new(Expr::num(1.0)),
        );
        assert_eq!(a, b);
    }
}
