//! The DML language: lexer, AST, and recursive-descent parser.

pub mod ast;
pub mod lexer;
pub mod parse;

pub use ast::{Arg, BinOp, Expr, FunctionDef, Program, Stmt, UnOp};
pub use parse::parse_program;
