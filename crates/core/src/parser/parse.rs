//! Recursive-descent parser for DML with R-like operator precedence.
//!
//! Precedence (loosest to tightest):
//! `|` < `&` < `!` < comparisons < `+ -` < `* /` < `%*% %% %/%` < `:`
//! < unary `-` < `^` < postfix (indexing, calls).

use super::ast::*;
use super::lexer::{tokenize, Token, TokenKind};
use sysds_common::{Result, ScalarValue, SysDsError};

/// Parse a full DML program.
pub fn parse_program(src: &str) -> Result<Program> {
    let tokens = tokenize(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut program = Program::default();
    while !p.at(&TokenKind::Eof) {
        p.skip_separators();
        if p.at(&TokenKind::Eof) {
            break;
        }
        if p.peek_function_def() {
            program.functions.push(p.function_def()?);
        } else {
            program.statements.push(p.statement()?);
        }
    }
    Ok(program)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn cur(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn kind(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn at(&self, k: &TokenKind) -> bool {
        self.kind() == k
    }

    fn peek_kind(&self, ahead: usize) -> &TokenKind {
        let i = (self.pos + ahead).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> SysDsError {
        let t = self.cur();
        SysDsError::Parse {
            line: t.line,
            col: t.col,
            msg: msg.into(),
        }
    }

    fn expect(&mut self, k: TokenKind) -> Result<Token> {
        if self.kind() == &k {
            Ok(self.bump())
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                k.describe(),
                self.kind().describe()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        match self.kind().clone() {
            TokenKind::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    fn skip_separators(&mut self) {
        while self.at(&TokenKind::Semicolon) {
            self.bump();
        }
    }

    /// Lookahead: `IDENT = function (`.
    fn peek_function_def(&self) -> bool {
        matches!(self.kind(), TokenKind::Ident(_))
            && self.peek_kind(1) == &TokenKind::Assign
            && self.peek_kind(2) == &TokenKind::Function
    }

    // ---- statements --------------------------------------------------

    fn statement(&mut self) -> Result<Stmt> {
        let stmt = match self.kind().clone() {
            TokenKind::If => self.if_stmt()?,
            TokenKind::For => self.for_stmt(false)?,
            TokenKind::Parfor => self.for_stmt(true)?,
            TokenKind::While => self.while_stmt()?,
            TokenKind::LBracket => self.multi_assign()?,
            TokenKind::Ident(name) => {
                match self.peek_kind(1) {
                    TokenKind::Assign => {
                        self.bump(); // ident
                        self.bump(); // =
                        let value = self.expr()?;
                        Stmt::Assign {
                            target: name,
                            value,
                        }
                    }
                    TokenKind::LBracket => {
                        // Could be `X[i,j] = e` (left indexing) or an
                        // expression statement starting with an index.
                        let save = self.pos;
                        self.bump(); // ident
                        self.bump(); // [
                        let (rows, cols) = self.index_pair()?;
                        self.expect(TokenKind::RBracket)?;
                        if self.at(&TokenKind::Assign) {
                            self.bump();
                            let value = self.expr()?;
                            Stmt::IndexAssign {
                                target: name,
                                rows,
                                cols,
                                value,
                            }
                        } else {
                            self.pos = save;
                            Stmt::ExprStmt(self.expr()?)
                        }
                    }
                    _ => Stmt::ExprStmt(self.expr()?),
                }
            }
            _ => Stmt::ExprStmt(self.expr()?),
        };
        self.skip_separators();
        Ok(stmt)
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        if self.at(&TokenKind::LBrace) {
            self.bump();
            let mut stmts = Vec::new();
            loop {
                self.skip_separators();
                if self.at(&TokenKind::RBrace) {
                    self.bump();
                    break;
                }
                if self.at(&TokenKind::Eof) {
                    return Err(self.err("unterminated block (missing '}')"));
                }
                stmts.push(self.statement()?);
            }
            Ok(stmts)
        } else {
            Ok(vec![self.statement()?])
        }
    }

    fn if_stmt(&mut self) -> Result<Stmt> {
        self.expect(TokenKind::If)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let then_branch = self.block()?;
        let else_branch = if self.at(&TokenKind::Else) {
            self.bump();
            if self.at(&TokenKind::If) {
                vec![self.if_stmt()?]
            } else {
                self.block()?
            }
        } else {
            Vec::new()
        };
        Ok(Stmt::If {
            cond,
            then_branch,
            else_branch,
        })
    }

    fn for_stmt(&mut self, parallel: bool) -> Result<Stmt> {
        if parallel {
            self.expect(TokenKind::Parfor)?;
        } else {
            self.expect(TokenKind::For)?;
        }
        self.expect(TokenKind::LParen)?;
        let var = self.expect_ident()?;
        self.expect(TokenKind::In)?;
        let range = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        let (from, to, step) = match range {
            Expr::Seq(a, b) => (*a, *b, None),
            Expr::Call { ref name, ref args } if name == "seq" && (2..=3).contains(&args.len()) => {
                let mut it = args.iter().map(|a| a.value.clone());
                let from = it.next().unwrap();
                let to = it.next().unwrap();
                (from, to, it.next())
            }
            _ => return Err(self.err("for/parfor range must be 'a:b' or seq(a, b[, step])")),
        };
        if parallel {
            if step.is_some() {
                return Err(self.err("parfor does not support a step expression"));
            }
            Ok(Stmt::Parfor {
                var,
                from,
                to,
                body,
            })
        } else {
            Ok(Stmt::For {
                var,
                from,
                to,
                step,
                body,
            })
        }
    }

    fn while_stmt(&mut self) -> Result<Stmt> {
        self.expect(TokenKind::While)?;
        self.expect(TokenKind::LParen)?;
        let cond = self.expr()?;
        self.expect(TokenKind::RParen)?;
        let body = self.block()?;
        Ok(Stmt::While { cond, body })
    }

    fn multi_assign(&mut self) -> Result<Stmt> {
        self.expect(TokenKind::LBracket)?;
        let mut targets = vec![self.expect_ident()?];
        while self.at(&TokenKind::Comma) {
            self.bump();
            targets.push(self.expect_ident()?);
        }
        self.expect(TokenKind::RBracket)?;
        self.expect(TokenKind::Assign)?;
        let value = self.expr()?;
        if !matches!(value, Expr::Call { .. }) {
            return Err(self.err("multi-assignment requires a function call on the right"));
        }
        Ok(Stmt::MultiAssign { targets, value })
    }

    // ---- function definitions ----------------------------------------

    fn function_def(&mut self) -> Result<FunctionDef> {
        let name = self.expect_ident()?;
        self.expect(TokenKind::Assign)?;
        self.expect(TokenKind::Function)?;
        self.expect(TokenKind::LParen)?;
        let mut params = Vec::new();
        while !self.at(&TokenKind::RParen) {
            let (ty, pname) = self.typed_name()?;
            let default = if self.at(&TokenKind::Assign) {
                self.bump();
                Some(self.expr()?)
            } else {
                None
            };
            params.push((pname, ty, default));
            if self.at(&TokenKind::Comma) {
                self.bump();
            } else {
                break;
            }
        }
        self.expect(TokenKind::RParen)?;
        let mut outputs = Vec::new();
        if self.at(&TokenKind::Return) {
            self.bump();
            self.expect(TokenKind::LParen)?;
            while !self.at(&TokenKind::RParen) {
                let (_ty, oname) = self.typed_name()?;
                outputs.push(oname);
                if self.at(&TokenKind::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
        }
        let body = self.block()?;
        Ok(FunctionDef {
            name,
            params,
            outputs,
            body,
        })
    }

    /// Parse `[type] name`: `matrix[double] X`, `double reg`, or bare `X`.
    fn typed_name(&mut self) -> Result<(String, String)> {
        let first = self.expect_ident()?;
        // `matrix[double] X` / `frame[string] F`
        if self.at(&TokenKind::LBracket) {
            self.bump();
            let inner = self.expect_ident()?;
            self.expect(TokenKind::RBracket)?;
            let name = self.expect_ident()?;
            return Ok((format!("{first}[{inner}]"), name));
        }
        // `double reg`
        if let TokenKind::Ident(_) = self.kind() {
            let name = self.expect_ident()?;
            return Ok((first, name));
        }
        // untyped
        Ok(("auto".to_string(), first))
    }

    // ---- expressions --------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.and_expr()?;
        while self.at(&TokenKind::Or) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.not_expr()?;
        while self.at(&TokenKind::And) {
            self.bump();
            let rhs = self.not_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        if self.at(&TokenKind::Not) {
            self.bump();
            let inner = self.not_expr()?;
            Ok(Expr::Unary(UnOp::Not, Box::new(inner)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr> {
        let lhs = self.add_expr()?;
        let op = match self.kind() {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Neq => BinOp::Neq,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        Ok(Expr::Binary(op, Box::new(lhs), Box::new(rhs)))
    }

    fn add_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.kind() {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.special_expr()?;
        loop {
            let op = match self.kind() {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                _ => break,
            };
            self.bump();
            let rhs = self.special_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn special_expr(&mut self) -> Result<Expr> {
        let mut lhs = self.range_expr()?;
        loop {
            let op = match self.kind() {
                TokenKind::MatMul => BinOp::MatMul,
                TokenKind::Mod => BinOp::Mod,
                TokenKind::IntDiv => BinOp::IntDiv,
                _ => break,
            };
            self.bump();
            let rhs = self.range_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn range_expr(&mut self) -> Result<Expr> {
        let lhs = self.unary_expr()?;
        if self.at(&TokenKind::Colon) {
            self.bump();
            let rhs = self.unary_expr()?;
            Ok(Expr::Seq(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn unary_expr(&mut self) -> Result<Expr> {
        if self.at(&TokenKind::Minus) {
            self.bump();
            let inner = self.unary_expr()?;
            // Fold negation of literals immediately.
            return Ok(match inner {
                Expr::Const(ScalarValue::F64(v)) => Expr::num(-v),
                Expr::Const(ScalarValue::I64(v)) => Expr::int(-v),
                other => Expr::Unary(UnOp::Neg, Box::new(other)),
            });
        }
        if self.at(&TokenKind::Plus) {
            self.bump();
            return self.unary_expr();
        }
        self.power_expr()
    }

    fn power_expr(&mut self) -> Result<Expr> {
        let base = self.postfix_expr()?;
        if self.at(&TokenKind::Caret) {
            self.bump();
            // right-associative; exponent may itself be unary (-1)
            let exp = self.unary_expr()?;
            Ok(Expr::Binary(BinOp::Pow, Box::new(base), Box::new(exp)))
        } else {
            Ok(base)
        }
    }

    /// Line of the most recently consumed token (for newline-sensitive
    /// postfix parsing, like R: `x * 0.1\n[B] = ...` must NOT parse the
    /// bracket as indexing into `0.1`).
    fn prev_line(&self) -> usize {
        self.tokens[self.pos.saturating_sub(1)].line
    }

    fn postfix_expr(&mut self) -> Result<Expr> {
        let mut e = self.primary_expr()?;
        loop {
            match self.kind() {
                TokenKind::LBracket if self.cur().line == self.prev_line() => {
                    self.bump();
                    let (rows, cols) = self.index_pair()?;
                    self.expect(TokenKind::RBracket)?;
                    e = Expr::Index {
                        target: Box::new(e),
                        rows,
                        cols,
                    };
                }
                _ => break,
            }
        }
        Ok(e)
    }

    /// Parse `rows, cols` inside `[...]`, each possibly empty or a range.
    fn index_pair(&mut self) -> Result<(IndexExpr, IndexExpr)> {
        let rows = self.index_dim()?;
        let cols = if self.at(&TokenKind::Comma) {
            self.bump();
            self.index_dim()?
        } else {
            IndexExpr::All
        };
        Ok((rows, cols))
    }

    fn index_dim(&mut self) -> Result<IndexExpr> {
        if self.at(&TokenKind::Comma) || self.at(&TokenKind::RBracket) {
            return Ok(IndexExpr::All);
        }
        let e = self.expr()?;
        Ok(match e {
            Expr::Seq(a, b) => IndexExpr::Range(a, b),
            other => IndexExpr::Single(Box::new(other)),
        })
    }

    fn primary_expr(&mut self) -> Result<Expr> {
        match self.kind().clone() {
            TokenKind::Int(v) => {
                self.bump();
                Ok(Expr::int(v))
            }
            TokenKind::Number(v) => {
                self.bump();
                Ok(Expr::num(v))
            }
            TokenKind::Str(s) => {
                self.bump();
                Ok(Expr::Const(ScalarValue::Str(s)))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::Const(ScalarValue::Bool(true)))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::Const(ScalarValue::Bool(false)))
            }
            TokenKind::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                self.bump();
                if self.at(&TokenKind::LParen) && self.cur().line == self.prev_line() {
                    self.bump();
                    let mut args = Vec::new();
                    while !self.at(&TokenKind::RParen) {
                        args.push(self.call_arg()?);
                        if self.at(&TokenKind::Comma) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen)?;
                    Ok(Expr::Call { name, args })
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("unexpected {}", other.describe()))),
        }
    }

    fn call_arg(&mut self) -> Result<Arg> {
        // named argument: IDENT '=' expr (but not '==')
        if let TokenKind::Ident(name) = self.kind().clone() {
            if self.peek_kind(1) == &TokenKind::Assign {
                self.bump();
                self.bump();
                let value = self.expr()?;
                return Ok(Arg {
                    name: Some(name),
                    value,
                });
            }
        }
        Ok(Arg {
            name: None,
            value: self.expr()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stmt(src: &str) -> Stmt {
        parse_program(src)
            .unwrap()
            .statements
            .into_iter()
            .next()
            .unwrap()
    }

    #[test]
    fn simple_assignment() {
        let s = stmt("x = 1 + 2 * 3");
        let Stmt::Assign { target, value } = s else {
            panic!()
        };
        assert_eq!(target, "x");
        // precedence: 1 + (2*3)
        assert_eq!(
            value,
            Expr::Binary(
                BinOp::Add,
                Box::new(Expr::int(1)),
                Box::new(Expr::Binary(
                    BinOp::Mul,
                    Box::new(Expr::int(2)),
                    Box::new(Expr::int(3))
                ))
            )
        );
    }

    #[test]
    fn matmul_precedence_tighter_than_mul() {
        // a * B %*% C parses as a * (B %*% C)
        let Stmt::Assign { value, .. } = stmt("x = a * B %*% C") else {
            panic!()
        };
        let Expr::Binary(BinOp::Mul, _, rhs) = value else {
            panic!("{value:?}")
        };
        assert!(matches!(*rhs, Expr::Binary(BinOp::MatMul, _, _)));
    }

    #[test]
    fn power_is_right_associative_and_tight() {
        let Stmt::Assign { value, .. } = stmt("x = -2 ^ 2") else {
            panic!()
        };
        // R semantics: -(2^2)
        assert!(matches!(value, Expr::Unary(UnOp::Neg, _)));
        let Stmt::Assign { value, .. } = stmt("x = 2 ^ 3 ^ 2") else {
            panic!()
        };
        let Expr::Binary(BinOp::Pow, _, rhs) = value else {
            panic!()
        };
        assert!(matches!(*rhs, Expr::Binary(BinOp::Pow, _, _)));
    }

    #[test]
    fn indexing_forms() {
        let Stmt::Assign { value, .. } = stmt("y = X[1:5, 2]") else {
            panic!()
        };
        let Expr::Index { rows, cols, .. } = value else {
            panic!()
        };
        assert!(matches!(rows, IndexExpr::Range(_, _)));
        assert!(matches!(cols, IndexExpr::Single(_)));

        let Stmt::Assign { value, .. } = stmt("y = X[, k]") else {
            panic!()
        };
        let Expr::Index { rows, cols, .. } = value else {
            panic!()
        };
        assert!(matches!(rows, IndexExpr::All));
        assert!(matches!(cols, IndexExpr::Single(_)));

        let Stmt::Assign { value, .. } = stmt("y = X[i, ]") else {
            panic!()
        };
        let Expr::Index { rows, cols, .. } = value else {
            panic!()
        };
        assert!(matches!(rows, IndexExpr::Single(_)));
        assert!(matches!(cols, IndexExpr::All));
    }

    #[test]
    fn left_indexing_assignment() {
        let s = stmt("B[, i] = v");
        assert!(matches!(s, Stmt::IndexAssign { .. }));
    }

    #[test]
    fn multi_assignment() {
        let s = stmt("[B, S] = steplm(X=X, y=y)");
        let Stmt::MultiAssign { targets, value } = s else {
            panic!()
        };
        assert_eq!(targets, vec!["B".to_string(), "S".to_string()]);
        let Expr::Call { name, args } = value else {
            panic!()
        };
        assert_eq!(name, "steplm");
        assert_eq!(args[0].name.as_deref(), Some("X"));
        // multi-assign requires a call
        assert!(parse_program("[a, b] = 3").is_err());
    }

    #[test]
    fn if_else_chain() {
        let s = stmt("if (x > 1) { y = 1 } else if (x > 0) y = 2 else { y = 3 }");
        let Stmt::If { else_branch, .. } = s else {
            panic!()
        };
        assert_eq!(else_branch.len(), 1);
        assert!(matches!(else_branch[0], Stmt::If { .. }));
    }

    #[test]
    fn for_with_range_and_seq() {
        let s = stmt("for (i in 1:10) x = i");
        assert!(matches!(s, Stmt::For { step: None, .. }));
        let s = stmt("for (i in seq(1, 10, 2)) x = i");
        assert!(matches!(s, Stmt::For { step: Some(_), .. }));
        assert!(parse_program("for (i in X) x = i").is_err());
    }

    #[test]
    fn parfor_parses() {
        let s = stmt("parfor (i in 1:n) { B[, i] = f(i) }");
        let Stmt::Parfor { var, body, .. } = s else {
            panic!()
        };
        assert_eq!(var, "i");
        assert_eq!(body.len(), 1);
    }

    #[test]
    fn while_loop() {
        let s = stmt("while (continue) { i = i + 1 }");
        assert!(matches!(s, Stmt::While { .. }));
    }

    #[test]
    fn function_definition_typed() {
        let p = parse_program(
            "m_lm = function(matrix[double] X, double reg = 0.001) return (matrix[double] B) { B = X }",
        )
        .unwrap();
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "m_lm");
        assert_eq!(
            f.params[0],
            ("X".to_string(), "matrix[double]".to_string(), None)
        );
        assert_eq!(f.params[1].0, "reg");
        assert!(f.params[1].2.is_some());
        assert_eq!(f.outputs, vec!["B".to_string()]);
    }

    #[test]
    fn function_definition_untyped() {
        let p = parse_program("f = function(X, y) return (B) { B = X }").unwrap();
        let f = &p.functions[0];
        assert_eq!(f.params[0].0, "X");
        assert_eq!(f.params[0].1, "auto");
    }

    #[test]
    fn call_statement() {
        let s = stmt(r#"print("hello")"#);
        assert!(matches!(s, Stmt::ExprStmt(Expr::Call { .. })));
    }

    #[test]
    fn named_argument_not_confused_with_equality() {
        let Stmt::ExprStmt(Expr::Call { args, .. }) = stmt("f(a == b, c = 1)") else {
            panic!()
        };
        assert_eq!(args[0].name, None);
        assert_eq!(args[1].name.as_deref(), Some("c"));
    }

    #[test]
    fn comparison_and_logic_precedence() {
        // a > 1 & b < 2 parses as (a>1) & (b<2)
        let Stmt::Assign { value, .. } = stmt("x = a > 1 & b < 2") else {
            panic!()
        };
        let Expr::Binary(BinOp::And, l, r) = value else {
            panic!()
        };
        assert!(matches!(*l, Expr::Binary(BinOp::Gt, _, _)));
        assert!(matches!(*r, Expr::Binary(BinOp::Lt, _, _)));
    }

    #[test]
    fn unary_not() {
        let Stmt::Assign { value, .. } = stmt("x = !fixed & y") else {
            panic!()
        };
        // ! binds looser than comparison but tighter than &? No: per our
        // grammar !fixed & y = (!fixed) & y since not_expr is above and.
        let Expr::Binary(BinOp::And, l, _) = value else {
            panic!("{value:?}")
        };
        assert!(matches!(*l, Expr::Unary(UnOp::Not, _)));
    }

    #[test]
    fn range_in_expression() {
        let Stmt::Assign { value, .. } = stmt("x = 1:5") else {
            panic!()
        };
        assert!(matches!(value, Expr::Seq(_, _)));
    }

    #[test]
    fn error_positions_reported() {
        let err = parse_program("x = (1 + ").unwrap_err();
        assert!(matches!(err, SysDsError::Parse { .. }));
        let err = parse_program("if x > 1 { }").unwrap_err();
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn arrow_assignment() {
        let s = stmt("x <- 3");
        assert!(matches!(s, Stmt::Assign { .. }));
    }

    #[test]
    fn newline_separates_postfix_from_next_statement() {
        // `x = a * 0.1` followed by `[B, c] = f(y)` on the next line must
        // not parse the bracket as indexing into `0.1` (R semantics).
        let p = parse_program("x = a * 0.1\n[B, c] = steplm(y)").unwrap();
        assert_eq!(p.statements.len(), 2);
        assert!(matches!(p.statements[1], Stmt::MultiAssign { .. }));
        // Same-line indexing still works.
        let p = parse_program("x = a[1, 2]").unwrap();
        let Stmt::Assign { value, .. } = &p.statements[0] else {
            panic!()
        };
        assert!(matches!(value, Expr::Index { .. }));
    }

    #[test]
    fn newline_separates_call_parens() {
        // `y = a` then `(1 + 2)` must not become a call `a(1 + 2)`.
        let p = parse_program("y = a\n(1 + 2)").unwrap();
        assert_eq!(p.statements.len(), 2);
        assert!(matches!(p.statements[0], Stmt::Assign { .. }));
    }

    #[test]
    fn semicolons_optional() {
        let p = parse_program("a = 1; b = 2\nc = 3;").unwrap();
        assert_eq!(p.statements.len(), 3);
    }
}
