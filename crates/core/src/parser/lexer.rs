//! Tokenizer for DML.

use sysds_common::{Result, SysDsError};

/// A lexical token with its source position (1-based).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    pub kind: TokenKind,
    pub line: usize,
    pub col: usize,
}

/// Token kinds of the DML language.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    Ident(String),
    Number(f64),
    Int(i64),
    Str(String),
    True,
    False,
    If,
    Else,
    For,
    While,
    Parfor,
    Function,
    Return,
    In,
    // punctuation
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Semicolon,
    Assign, // = or <-
    Plus,
    Minus,
    Star,
    Slash,
    Caret,
    Percent, // standalone % is invalid; kept for error messages
    MatMul,  // %*%
    Mod,     // %%
    IntDiv,  // %/%
    Colon,
    Eq,  // ==
    Neq, // !=
    Lt,
    Le,
    Gt,
    Ge,
    Not, // !
    And, // &
    Or,  // |
    Eof,
}

impl TokenKind {
    /// Human-readable name for error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier '{s}'"),
            TokenKind::Number(v) => format!("number {v}"),
            TokenKind::Int(v) => format!("integer {v}"),
            TokenKind::Str(s) => format!("string \"{s}\""),
            TokenKind::Eof => "end of input".into(),
            other => format!("{other:?}"),
        }
    }
}

/// Tokenize DML source. `#` starts a line comment. The scanner is
/// char-based, so multi-byte UTF-8 (in string literals or as stray input)
/// never causes mid-character slicing.
pub fn tokenize(src: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    // (byte offset, char) pairs; byte offsets are always char boundaries.
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let n = chars.len();
    let mut i = 0usize; // index into `chars`
    let mut line = 1usize;
    let mut col = 1usize;
    // Lookahead on the raw source from the current char boundary.
    let rest = |i: usize| -> &str {
        if i < n {
            &src[chars[i].0..]
        } else {
            ""
        }
    };
    macro_rules! push {
        ($kind:expr, $len:expr) => {{
            tokens.push(Token {
                kind: $kind,
                line,
                col,
            });
            i += $len;
            col += $len;
        }};
    }
    while i < n {
        let c = chars[i].1;
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            ' ' | '\t' | '\r' => {
                i += 1;
                col += 1;
            }
            '#' => {
                while i < n && chars[i].1 != '\n' {
                    i += 1;
                }
            }
            '(' => push!(TokenKind::LParen, 1),
            ')' => push!(TokenKind::RParen, 1),
            '{' => push!(TokenKind::LBrace, 1),
            '}' => push!(TokenKind::RBrace, 1),
            '[' => push!(TokenKind::LBracket, 1),
            ']' => push!(TokenKind::RBracket, 1),
            ',' => push!(TokenKind::Comma, 1),
            ';' => push!(TokenKind::Semicolon, 1),
            '+' => push!(TokenKind::Plus, 1),
            '-' => push!(TokenKind::Minus, 1),
            '*' => push!(TokenKind::Star, 1),
            '/' => push!(TokenKind::Slash, 1),
            '^' => push!(TokenKind::Caret, 1),
            ':' => push!(TokenKind::Colon, 1),
            '&' => push!(TokenKind::And, 1),
            '|' => push!(TokenKind::Or, 1),
            '%' => {
                if rest(i).starts_with("%*%") {
                    push!(TokenKind::MatMul, 3);
                } else if rest(i).starts_with("%/%") {
                    push!(TokenKind::IntDiv, 3);
                } else if rest(i).starts_with("%%") {
                    push!(TokenKind::Mod, 2);
                } else {
                    return Err(SysDsError::Parse {
                        line,
                        col,
                        msg: "stray '%' (expected %*%, %%, or %/%)".into(),
                    });
                }
            }
            '=' => {
                if rest(i).starts_with("==") {
                    push!(TokenKind::Eq, 2);
                } else {
                    push!(TokenKind::Assign, 1);
                }
            }
            '!' => {
                if rest(i).starts_with("!=") {
                    push!(TokenKind::Neq, 2);
                } else {
                    push!(TokenKind::Not, 1);
                }
            }
            '<' => {
                if rest(i).starts_with("<=") {
                    push!(TokenKind::Le, 2);
                } else if rest(i).starts_with("<-") {
                    push!(TokenKind::Assign, 2);
                } else {
                    push!(TokenKind::Lt, 1);
                }
            }
            '>' => {
                if rest(i).starts_with(">=") {
                    push!(TokenKind::Ge, 2);
                } else {
                    push!(TokenKind::Gt, 1);
                }
            }
            '"' | '\'' => {
                let quote = c;
                let mut j = i + 1;
                let mut s = String::new();
                loop {
                    if j >= n || chars[j].1 == '\n' {
                        return Err(SysDsError::Parse {
                            line,
                            col,
                            msg: "unterminated string literal".into(),
                        });
                    }
                    let cj = chars[j].1;
                    if cj == quote {
                        break;
                    }
                    if cj == '\\' && j + 1 < n {
                        let esc = chars[j + 1].1;
                        s.push(match esc {
                            'n' => '\n',
                            't' => '\t',
                            '\\' => '\\',
                            '"' => '"',
                            '\'' => '\'',
                            other => other,
                        });
                        j += 2;
                    } else {
                        s.push(cj);
                        j += 1;
                    }
                }
                let len = j + 1 - i;
                push!(TokenKind::Str(s), len);
            }
            '0'..='9' | '.' => {
                let start = i;
                let mut j = i;
                let mut has_dot = false;
                let mut has_exp = false;
                while j < n {
                    match chars[j].1 {
                        '0'..='9' => j += 1,
                        '.' if !has_dot && !has_exp => {
                            has_dot = true;
                            j += 1;
                        }
                        'e' | 'E' if !has_exp && j > start => {
                            has_exp = true;
                            j += 1;
                            if j < n && (chars[j].1 == '+' || chars[j].1 == '-') {
                                j += 1;
                            }
                        }
                        _ => break,
                    }
                }
                let text: String = chars[start..j].iter().map(|&(_, c)| c).collect();
                if text == "." {
                    return Err(SysDsError::Parse {
                        line,
                        col,
                        msg: "stray '.'".into(),
                    });
                }
                let kind = if has_dot || has_exp {
                    TokenKind::Number(text.parse().map_err(|_| SysDsError::Parse {
                        line,
                        col,
                        msg: format!("bad number literal '{text}'"),
                    })?)
                } else {
                    match text.parse::<i64>() {
                        Ok(v) => TokenKind::Int(v),
                        Err(_) => {
                            TokenKind::Number(text.parse().map_err(|_| SysDsError::Parse {
                                line,
                                col,
                                msg: format!("bad number literal '{text}'"),
                            })?)
                        }
                    }
                };
                let len = j - start;
                push!(kind, len);
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                // identifiers may contain '.', e.g. as.scalar
                while j < n {
                    let d = chars[j].1;
                    if d.is_ascii_alphanumeric() || d == '_' || d == '.' {
                        j += 1;
                    } else {
                        break;
                    }
                }
                let text: String = chars[start..j].iter().map(|&(_, c)| c).collect();
                let kind = match text.as_str() {
                    "TRUE" => TokenKind::True,
                    "FALSE" => TokenKind::False,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "for" => TokenKind::For,
                    "while" => TokenKind::While,
                    "parfor" => TokenKind::Parfor,
                    "function" => TokenKind::Function,
                    "return" => TokenKind::Return,
                    "in" => TokenKind::In,
                    _ => TokenKind::Ident(text),
                };
                let len = j - start;
                push!(kind, len);
            }
            other => {
                return Err(SysDsError::Parse {
                    line,
                    col,
                    msg: format!("unexpected character '{other}'"),
                })
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        line,
        col,
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_expression() {
        assert_eq!(
            kinds("x = 1 + 2.5"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Assign,
                TokenKind::Int(1),
                TokenKind::Plus,
                TokenKind::Number(2.5),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn percent_operators() {
        assert_eq!(
            kinds("A %*% B %% C %/% D"),
            vec![
                TokenKind::Ident("A".into()),
                TokenKind::MatMul,
                TokenKind::Ident("B".into()),
                TokenKind::Mod,
                TokenKind::Ident("C".into()),
                TokenKind::IntDiv,
                TokenKind::Ident("D".into()),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("a % b").is_err());
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("x # comment\ny"),
            vec![
                TokenKind::Ident("x".into()),
                TokenKind::Ident("y".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#"s = "a\nb""#),
            vec![
                TokenKind::Ident("s".into()),
                TokenKind::Assign,
                TokenKind::Str("a\nb".into()),
                TokenKind::Eof
            ]
        );
        assert!(tokenize("\"open").is_err());
        assert!(tokenize("\"two\nlines\"").is_err());
    }

    #[test]
    fn keywords_and_dotted_idents() {
        assert_eq!(
            kinds("if else parfor as.scalar TRUE"),
            vec![
                TokenKind::If,
                TokenKind::Else,
                TokenKind::Parfor,
                TokenKind::Ident("as.scalar".into()),
                TokenKind::True,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn comparison_and_arrow_assign() {
        assert_eq!(
            kinds("a <- b <= c == d != e"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Assign,
                TokenKind::Ident("b".into()),
                TokenKind::Le,
                TokenKind::Ident("c".into()),
                TokenKind::Eq,
                TokenKind::Ident("d".into()),
                TokenKind::Neq,
                TokenKind::Ident("e".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn scientific_notation() {
        assert_eq!(kinds("1e-3")[0], TokenKind::Number(0.001));
        assert_eq!(kinds("2.5E2")[0], TokenKind::Number(250.0));
    }

    #[test]
    fn positions_tracked() {
        let toks = tokenize("x\n  y").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unicode_in_strings_and_errors() {
        // multi-byte characters inside string literals survive intact
        let toks = tokenize("s = \"héllo → 世界\"").unwrap();
        assert_eq!(toks[2].kind, TokenKind::Str("héllo → 世界".into()));
        // multi-byte characters outside strings are clean errors, not panics
        assert!(tokenize("x = é").is_err());
        assert!(tokenize("ꟓ¥;Q7&").is_err());
    }

    #[test]
    fn unexpected_character_reported() {
        let err = tokenize("a @ b").unwrap_err();
        assert!(err.to_string().contains('@'));
    }
}
