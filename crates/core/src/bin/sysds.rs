//! The `sysds` command-line launcher (paper §2.2 (1): "command line
//! invocation").
//!
//! ```bash
//! sysds run script.dml                      # execute a DML script
//! sysds run script.dml --reuse --stats      # with lineage reuse + stats
//! sysds run script.dml --threads 8 --budget-mb 512
//! sysds run script.dml --arg X=features.csv # $X substitution
//! sysds run script.dml --explain hops       # HOP DAGs with size estimates
//! sysds run script.dml --chrome-trace t.json # chrome://tracing timeline
//! ```

use std::process::ExitCode;
use sysds::api::SystemDS;
use sysds::compiler::explain::ExplainLevel;
use sysds_common::config::ReusePolicy;
use sysds_common::EngineConfig;

fn usage() -> ! {
    eprintln!(
        "usage: sysds run <script.dml> [options]\n\
         \n\
         options:\n\
           --arg NAME=VALUE   substitute $NAME in the script with VALUE\n\
           --threads N        kernel/parfor parallelism (default: cores)\n\
           --budget-mb N      driver memory budget before ops go distributed\n\
           --reuse            enable lineage tracing + full/partial reuse\n\
           --blas             use the optimized (BLAS-like) kernels\n\
           --no-recompile     disable dynamic recompilation\n\
           --no-fusion        disable cell-wise operator fusion\n\
           --stats            print heavy-hitter, buffer-pool, cache and\n\
                              estimate-vs-actual statistics after execution\n\
           --trace FILE       write one JSONL span record per compiler\n\
                              phase / instruction / worker to FILE\n\
           --chrome-trace FILE  export the run timeline as Chrome\n\
                              trace_event JSON (chrome://tracing, Perfetto)\n\
           --explain [LEVEL]  print the compiled plan before executing;\n\
                              LEVEL is 'hops' (default: HOP DAGs with\n\
                              dims/sparsity/memory/exec) or 'runtime'\n\
                              (lowered instructions)"
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.len() < 2 || args[0] != "run" {
        usage();
    }
    let script_path = &args[1];
    let mut config = EngineConfig::default();
    let mut stats = false;
    let mut explain: Option<ExplainLevel> = None;
    let mut substitutions: Vec<(String, String)> = Vec::new();
    let mut i = 2;
    while i < args.len() {
        match args[i].as_str() {
            "--arg" => {
                i += 1;
                let Some(pair) = args.get(i) else { usage() };
                let Some((k, v)) = pair.split_once('=') else {
                    usage()
                };
                substitutions.push((k.to_string(), v.to_string()));
            }
            "--threads" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse().ok()) else {
                    usage()
                };
                config.num_threads = n;
            }
            "--budget-mb" => {
                i += 1;
                let Some(n) = args.get(i).and_then(|v| v.parse::<usize>().ok()) else {
                    usage()
                };
                config.memory_budget = n << 20;
            }
            "--reuse" => config = config.reuse_policy(ReusePolicy::FullAndPartial),
            "--blas" => config.native_blas = true,
            "--no-recompile" => config.dynamic_recompile = false,
            "--no-fusion" => config.fusion = false,
            "--stats" => {
                stats = true;
                config.stats = true;
            }
            "--trace" => {
                i += 1;
                let Some(path) = args.get(i) else { usage() };
                config.trace_file = Some(path.into());
            }
            "--chrome-trace" => {
                i += 1;
                let Some(path) = args.get(i) else { usage() };
                config.chrome_trace_file = Some(path.into());
            }
            "--explain" => {
                // Optional level: `--explain runtime`; bare `--explain`
                // defaults to the HOP view.
                match args.get(i + 1).map(|s| s.parse::<ExplainLevel>()) {
                    Some(Ok(level)) => {
                        explain = Some(level);
                        i += 1;
                    }
                    _ => explain = Some(ExplainLevel::Hops),
                }
            }
            other => {
                eprintln!("unknown option '{other}'");
                usage();
            }
        }
        i += 1;
    }

    let mut script = match std::fs::read_to_string(script_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read '{script_path}': {e}");
            return ExitCode::FAILURE;
        }
    };
    // $NAME substitution, longest names first so $XY wins over $X.
    substitutions.sort_by_key(|(k, _)| std::cmp::Reverse(k.len()));
    for (k, v) in &substitutions {
        script = script.replace(&format!("${k}"), v);
    }

    let mut sds = match SystemDS::with_config(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("engine init failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    sds.echo_stdout(true);

    // Compile exactly once; explain and execution share the program.
    let program = match sds.compile(&script) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("compile error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(level) = explain {
        eprintln!(
            "# compiled program: {} top-level blocks, {} functions",
            program.blocks.len(),
            program.functions.len()
        );
        eprint!("{}", sds.explain(&program, level));
    }

    let tracing = sds.config().trace_file.is_some();
    let start = std::time::Instant::now();
    let result = sds.execute_program(&program, &[], &[]);
    if tracing {
        // Flush and close the JSONL sink so every span record is on disk.
        sysds_obs::disable_trace();
    }
    match sds.export_chrome_trace() {
        Ok(Some(path)) => eprintln!("# chrome trace written to {}", path.display()),
        Ok(None) => {}
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    match result {
        Ok(_) => {
            if stats {
                eprintln!("# elapsed: {:.3}s", start.elapsed().as_secs_f64());
                eprint!("{}", sds.run_report().render());
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
