//! DML-bodied builtin functions (paper §2.2).
//!
//! "To facilitate the development and compilation of these abstractions,
//! we introduced a mechanism for registering DML-bodied built-in
//! functions." Each builtin is DML source compiled on first use and then
//! treated exactly like a user function — straight-line bodies (like
//! `lmDS`) get inlined into callers, the rest become function blocks.
//!
//! The registry covers the paper's running example (`steplm` → `lm` →
//! `lmDS`/`lmCG`, Figure 2) plus lifecycle builtins for scaling,
//! normalization, PCA, k-means, and L2-SVM.

use crate::parser::{parse_program, Program};
use sysds_common::Result;

/// DML source of a builtin, or `None` if unknown.
pub fn builtin_source(name: &str) -> Option<&'static str> {
    Some(match name {
        // ---- the paper's Figure 2 stack --------------------------------
        "lmDS" => LM_DS,
        "lmCG" => LM_CG,
        "lm" => LM,
        "steplm" => STEPLM,
        "lmPredict" => LM_PREDICT,
        // ---- lifecycle builtins ----------------------------------------
        "scale" => SCALE,
        "normalize" => NORMALIZE,
        "pca" => PCA,
        "l2svm" => L2SVM,
        "kmeans" => KMEANS,
        "mse" => MSE,
        "cvLM" => CV_LM,
        "gridSearchLM" => GRID_SEARCH_LM,
        "logisticReg" => LOGISTIC_REG,
        _ => return None,
    })
}

/// Every registered DML-bodied builtin, in registration order.
pub const ALL_NAMES: &[&str] = &[
    "lmDS",
    "lmCG",
    "lm",
    "steplm",
    "lmPredict",
    "scale",
    "normalize",
    "pca",
    "l2svm",
    "kmeans",
    "mse",
    "cvLM",
    "gridSearchLM",
    "logisticReg",
];

/// Builtins the conformance fuzzer may call on arbitrary generated inputs.
///
/// These are closed-form and numerically continuous in their inputs, so any
/// well-conditioned random matrix is a valid argument and results stay
/// comparable across optimizer configurations at tight tolerances. The
/// iterative builtins (lmCG, kmeans, l2svm, logisticReg, steplm) and the
/// selection wrappers over them are excluded: early-exit thresholds turn
/// last-ULP differences into different iteration counts, which the
/// differential oracle would misreport as plan divergence.
pub const FUZZ_SAFE: &[&str] = &["scale", "normalize", "mse", "lmPredict"];

/// Resolve a builtin into a parsed program (the registration hook passed
/// to the compiler).
pub fn resolve(name: &str) -> Option<Program> {
    let src = builtin_source(name)?;
    Some(parse_program(src).expect("builtin sources are well-formed"))
}

/// Parse-check every registered builtin (used by tests).
pub fn check_all() -> Result<usize> {
    for n in ALL_NAMES {
        parse_program(builtin_source(n).unwrap())?;
    }
    Ok(ALL_NAMES.len())
}

/// Direct-solve linear regression (paper Figure 2, `m_lmDS`): solves the
/// regularized normal equations. Straight-line, so it inlines into callers
/// and its `t(X)%*%X` participates in cross-call CSE and lineage reuse.
const LM_DS: &str = r#"
lmDS = function(matrix[double] X, matrix[double] y, double reg = 0.0000001)
    return (matrix[double] B) {
  l = matrix(reg, rows=ncol(X), cols=1)
  A = t(X) %*% X + diag(l)
  b = t(X) %*% y
  B = solve(A, b)
}
"#;

/// Conjugate-gradient linear regression (paper Figure 2, `lmCG`), used for
/// wide feature matrices where forming the Gram matrix is too expensive.
const LM_CG: &str = r#"
lmCG = function(matrix[double] X, matrix[double] y, double reg = 0.0000001,
                double tol = 0.0000001, int maxi = 0)
    return (matrix[double] B) {
  r = -(t(X) %*% y)
  p = -r
  B = matrix(0, rows=ncol(X), cols=1)
  norm_r2 = sum(r * r)
  maxiter = ifelse(maxi > 0, maxi, ncol(X))
  i = 0
  while (i < maxiter & norm_r2 > tol * tol) {
    q = t(X) %*% (X %*% p) + reg * p
    alpha = norm_r2 / as.scalar(t(p) %*% q)
    B = B + alpha * p
    r = r + alpha * q
    old_norm_r2 = norm_r2
    norm_r2 = sum(r * r)
    p = -r + (norm_r2 / old_norm_r2) * p
    i = i + 1
  }
}
"#;

/// Dispatching linear regression (paper Figure 2, `m_lm`): direct solve
/// for narrow data, conjugate gradient beyond 1024 features.
const LM: &str = r#"
lm = function(matrix[double] X, matrix[double] y, double reg = 0.0000001,
              double tol = 0.0000001, int maxi = 0)
    return (matrix[double] B) {
  if (ncol(X) > 1024) {
    B = lmCG(X=X, y=y, reg=reg, tol=tol, maxi=maxi)
  } else {
    B = lmDS(X=X, y=y, reg=reg)
  }
}
"#;

/// Scoring helper.
const LM_PREDICT: &str = r#"
lmPredict = function(matrix[double] X, matrix[double] B)
    return (matrix[double] yhat) {
  yhat = X %*% B
}
"#;

/// Mean squared error.
const MSE: &str = r#"
mse = function(matrix[double] yhat, matrix[double] y)
    return (double err) {
  d = yhat - y
  err = sum(d * d) / nrow(y)
}
"#;

/// Stepwise linear regression (paper Example 1): greedy forward feature
/// selection by AIC, evaluating candidate features in a `parfor` and
/// training each what-if model via `lmDS` over `cbind(Xg, X[,j])` — the
/// exact pattern the partial-reuse compensation plans accelerate.
const STEPLM: &str = r#"
steplm = function(matrix[double] X, matrix[double] y, double reg = 0.000001,
                  int max_feat = 0)
    return (matrix[double] B, matrix[double] S) {
  n = nrow(X)
  m = ncol(X)
  limit = ifelse(max_feat > 0, max_feat, m)
  selected = matrix(0, rows=1, cols=m)
  Xg = matrix(1, rows=n, cols=1)
  B0 = lmDS(X=Xg, y=y, reg=reg)
  r0 = y - Xg %*% B0
  best_aic = n * log(sum(r0 * r0) / n) + 2
  continue = TRUE
  while (continue & sum(selected) < limit) {
    errs = matrix(-1, rows=1, cols=m)
    parfor (j in 1:m) {
      if (as.scalar(selected[1, j]) == 0) {
        Xi = cbind(Xg, X[, j])
        Bi = lmDS(X=Xi, y=y, reg=reg)
        ri = y - Xi %*% Bi
        errs[1, j] = sum(ri * ri)
      }
    }
    best_j = 0
    best_new_aic = best_aic
    for (j in 1:m) {
      e = as.scalar(errs[1, j])
      if (e >= 0) {
        k = sum(selected) + 2
        aic = n * log(e / n) + 2 * k
        if (aic < best_new_aic) {
          best_new_aic = aic
          best_j = j
        }
      }
    }
    if (best_j > 0) {
      selected[1, best_j] = 1
      Xg = cbind(Xg, X[, best_j])
      best_aic = best_new_aic
    } else {
      continue = FALSE
    }
  }
  B = lmDS(X=Xg, y=y, reg=reg)
  S = selected
}
"#;

/// Z-score standardization (column-wise), with zero-variance guard.
const SCALE: &str = r#"
scale = function(matrix[double] X, boolean center = TRUE, boolean doscale = TRUE)
    return (matrix[double] Y) {
  Y = X
  if (center) {
    Y = Y - colMeans(Y)
  }
  if (doscale) {
    csd = colSds(X)
    csd = csd + (csd == 0)
    Y = Y / csd
  }
}
"#;

/// Min-max normalization to [0, 1] per column (constant columns map to 0).
const NORMALIZE: &str = r#"
normalize = function(matrix[double] X)
    return (matrix[double] Y) {
  cmin = colMins(X)
  cmax = colMaxs(X)
  rng = cmax - cmin
  rng = rng + (rng == 0)
  Y = (X - cmin) / rng
}
"#;

/// PCA via power iteration with deflation (no eigen-decomposition
/// primitive needed; deterministic under the given seed).
const PCA: &str = r#"
pca = function(matrix[double] X, int k = 2, int iter = 100, int seed = 42)
    return (matrix[double] Xr, matrix[double] W) {
  Xc = X - colMeans(X)
  C = (t(Xc) %*% Xc) / (nrow(X) - 1)
  m = ncol(X)
  W = matrix(0, rows=m, cols=k)
  Cd = C
  for (c in 1:k) {
    v = rand(rows=m, cols=1, min=-1, max=1, seed=seed + c)
    for (i in 1:iter) {
      v = Cd %*% v
      v = v / sqrt(sum(v * v))
    }
    lambda = as.scalar(t(v) %*% Cd %*% v)
    W[, c] = v
    Cd = Cd - lambda * (v %*% t(v))
  }
  Xr = Xc %*% W
}
"#;

/// L2-regularized squared-hinge SVM via gradient descent; labels in {-1,+1}.
const L2SVM: &str = r#"
l2svm = function(matrix[double] X, matrix[double] y, double reg = 1.0,
                 double step = 0.01, int maxi = 100)
    return (matrix[double] w) {
  w = matrix(0, rows=ncol(X), cols=1)
  for (i in 1:maxi) {
    margin = 1 - y * (X %*% w)
    active = margin > 0
    g = t(X) %*% (-2 * (y * (margin * active))) + 2 * reg * w
    w = w - step * g
  }
}
"#;

/// K-fold cross-validation of `lmDS` (model validation, paper Figure 1):
/// contiguous folds, mean per-fold MSE.
const CV_LM: &str = r#"
cvLM = function(matrix[double] X, matrix[double] y, int folds = 5, double reg = 0.001)
    return (double err) {
  n = nrow(X)
  fs = floor(n / folds)
  err = 0
  for (f in 1:folds) {
    lo = (f - 1) * fs + 1
    hi = f * fs
    Xte = X[lo:hi, ]
    yte = y[lo:hi, ]
    if (f == 1) {
      Xtr = X[(hi + 1):n, ]
      ytr = y[(hi + 1):n, ]
    } else if (f == folds) {
      Xtr = X[1:(lo - 1), ]
      ytr = y[1:(lo - 1), ]
    } else {
      Xtr = rbind(X[1:(lo - 1), ], X[(hi + 1):n, ])
      ytr = rbind(y[1:(lo - 1), ], y[(hi + 1):n, ])
    }
    B = lmDS(X=Xtr, y=ytr, reg=reg)
    r = yte - Xte %*% B
    err = err + sum(r * r) / nrow(yte)
  }
  err = err / folds
}
"#;

/// Hyper-parameter grid search over λ for `lmDS` (model selection, paper
/// Figure 1): holdout split, parfor over candidates, refit on all data
/// with the winner. The per-candidate trainings share `t(Xtr)%*%Xtr`
/// through the lineage cache when reuse is enabled.
const GRID_SEARCH_LM: &str = r#"
gridSearchLM = function(matrix[double] X, matrix[double] y, matrix[double] lambdas)
    return (matrix[double] B, double best) {
  n = nrow(X)
  ntr = floor(0.8 * n)
  Xtr = X[1:ntr, ]
  ytr = y[1:ntr, ]
  Xte = X[(ntr + 1):n, ]
  yte = y[(ntr + 1):n, ]
  k = nrow(lambdas)
  errs = matrix(0, rows=k, cols=1)
  parfor (i in 1:k) {
    reg = as.scalar(lambdas[i, 1])
    Bi = lmDS(X=Xtr, y=ytr, reg=reg)
    r = yte - Xte %*% Bi
    errs[i, 1] = sum(r * r)
  }
  best_i = as.scalar(rowIndexMax(-t(errs)))
  best = as.scalar(lambdas[best_i, 1])
  B = lmDS(X=X, y=y, reg=best)
}
"#;

/// Binary logistic regression via gradient descent; labels in {0, 1}.
const LOGISTIC_REG: &str = r#"
logisticReg = function(matrix[double] X, matrix[double] y, double step = 1.0,
                       int maxi = 200, double reg = 0.001)
    return (matrix[double] w) {
  w = matrix(0, rows=ncol(X), cols=1)
  for (i in 1:maxi) {
    p = sigmoid(X %*% w)
    g = t(X) %*% (p - y) / nrow(X) + reg * w
    w = w - step * g
  }
}
"#;

/// Lloyd's k-means with squared-Euclidean distances; first-k-rows init.
const KMEANS: &str = r#"
kmeans = function(matrix[double] X, int k = 3, int maxi = 20)
    return (matrix[double] C, matrix[double] labels) {
  C = X[1:k, ]
  labels = matrix(0, rows=nrow(X), cols=1)
  for (it in 1:maxi) {
    D = -2 * (X %*% t(C)) + t(rowSums(C * C))
    labels = rowIndexMax(-D)
    for (c in 1:k) {
      mask = labels == c
      cnt = sum(mask)
      if (cnt > 0) {
        C[c, ] = colSums(X * mask) / cnt
      }
    }
  }
}
"#;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_builtins_parse() {
        assert_eq!(check_all().unwrap(), 14);
    }

    #[test]
    fn resolve_known_and_unknown() {
        assert!(resolve("lmDS").is_some());
        assert!(resolve("steplm").is_some());
        assert!(resolve("does_not_exist").is_none());
    }

    #[test]
    fn lmds_is_straight_line() {
        let p = resolve("lmDS").unwrap();
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert!(f.body.iter().all(|s| matches!(
            s,
            crate::parser::Stmt::Assign { .. } | crate::parser::Stmt::IndexAssign { .. }
        )));
    }

    #[test]
    fn steplm_declares_two_outputs() {
        let p = resolve("steplm").unwrap();
        assert_eq!(
            p.functions[0].outputs,
            vec!["B".to_string(), "S".to_string()]
        );
    }
}
