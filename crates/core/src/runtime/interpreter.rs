//! The control program: program-block interpretation (paper §2.3 (3)).
//!
//! Executes the compiled block hierarchy — basic blocks through the
//! instruction layer (with dynamic recompilation via plan caching),
//! branches, `for`/`while` loops, `parfor` with SystemML-style result
//! merge (compare-and-merge against the pre-loop value), and function
//! calls with fresh local scopes.

use crate::compiler::lower::{plan_for, Plan};
use crate::compiler::{BasicBlock, Block, CompiledFunction, CompiledProgram};
use crate::runtime::instructions::{execute, ExecCtx, Slot};
use crate::runtime::value::{Data, SymbolTable};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use sysds_common::{Result, ScalarValue, SysDsError};
use sysds_frame::{TransformEncoder, TransformSpec};
use sysds_tensor::Matrix;

/// The block interpreter.
pub struct Interpreter {
    pub ctx: Arc<ExecCtx>,
    pub program: Arc<CompiledProgram>,
}

impl Interpreter {
    /// Create an interpreter over a compiled program.
    pub fn new(ctx: Arc<ExecCtx>, program: Arc<CompiledProgram>) -> Interpreter {
        Interpreter { ctx, program }
    }

    /// Execute the program's top-level blocks against a symbol table.
    pub fn run(&self, symbols: &mut SymbolTable) -> Result<()> {
        self.exec_blocks(&self.program.blocks, symbols)
    }

    fn exec_blocks(&self, blocks: &[Block], st: &mut SymbolTable) -> Result<()> {
        for b in blocks {
            self.exec_block(b, st)?;
        }
        Ok(())
    }

    fn exec_block(&self, block: &Block, st: &mut SymbolTable) -> Result<()> {
        match block {
            Block::Basic(bb) => self.exec_basic(bb, st),
            Block::If {
                cond,
                then_blocks,
                else_blocks,
            } => {
                let c = self.eval_expr_block(cond, st)?.data.as_bool()?;
                if c {
                    self.exec_blocks(then_blocks, st)
                } else {
                    self.exec_blocks(else_blocks, st)
                }
            }
            Block::While { cond, body } => {
                while self.eval_expr_block(cond, st)?.data.as_bool()? {
                    self.exec_blocks(body, st)?;
                }
                Ok(())
            }
            Block::For {
                var,
                from,
                to,
                step,
                body,
                parallel,
            } => {
                let from = self.eval_expr_block(from, st)?.data.as_f64()?;
                let to = self.eval_expr_block(to, st)?.data.as_f64()?;
                let step = match step {
                    Some(s) => self.eval_expr_block(s, st)?.data.as_f64()?,
                    None => 1.0,
                };
                if step == 0.0 {
                    return Err(SysDsError::runtime("loop step must be non-zero"));
                }
                let iters = iteration_values(from, to, step);
                if *parallel {
                    self.exec_parfor(var, &iters, body, st)
                } else {
                    for v in iters {
                        st.set(var.clone(), iter_value(v), None);
                        self.exec_blocks(body, st)?;
                    }
                    Ok(())
                }
            }
            Block::Call {
                targets,
                function,
                args,
            } => self.exec_call(targets, function, args, st),
        }
    }

    /// Execute one basic block: recompile-or-reuse the plan, run the
    /// instructions, commit variable bindings.
    fn exec_basic(&self, bb: &BasicBlock, st: &mut SymbolTable) -> Result<()> {
        let plan = plan_for(bb, &st.size_env(), &self.ctx.config);
        let slots = self.run_plan(&plan, st)?;
        for b in &plan.bindings {
            let slot = slots[b.slot].as_ref().expect("binding slot computed");
            st.set(b.name.clone(), slot.data.clone(), slot.lineage.clone());
        }
        Ok(())
    }

    fn run_plan(&self, plan: &Plan, st: &SymbolTable) -> Result<Vec<Option<Slot>>> {
        let mut slots: Vec<Option<Slot>> = vec![None; plan.nslots];
        for instr in &plan.instrs {
            execute(instr, &mut slots, st, &self.ctx)?;
        }
        Ok(slots)
    }

    /// Evaluate an expression block (condition, loop bound, call argument).
    pub fn eval_expr_block(&self, bb: &BasicBlock, st: &SymbolTable) -> Result<Slot> {
        let plan = plan_for(bb, &st.size_env(), &self.ctx.config);
        let slots = self.run_plan(&plan, st)?;
        let slot = plan
            .result_slot
            .ok_or_else(|| SysDsError::runtime("expression block without result"))?;
        Ok(slots[slot].clone().expect("result computed"))
    }

    // ---- function calls -------------------------------------------------

    fn exec_call(
        &self,
        targets: &[String],
        function: &str,
        args: &[(Option<String>, BasicBlock)],
        st: &mut SymbolTable,
    ) -> Result<()> {
        // Multi-output runtime builtins.
        if function == "transformencode" {
            return self.exec_transformencode(targets, args, st);
        }
        if function == "transformapply" {
            return self.exec_transformapply(targets, args, st);
        }
        if function == "paramserv" {
            return self.exec_paramserv(targets, args, st);
        }
        if function == "eigen" {
            let target = Self::named_arg(args, "target", 0)
                .ok_or_else(|| SysDsError::runtime("eigen needs a matrix argument"))?;
            let a = self.eval_expr_block(target, st)?.data.as_matrix()?;
            let (w, v) = sysds_tensor::kernels::solve::eigen_symmetric(&a)?;
            if let Some(t) = targets.first() {
                st.set(t.clone(), self.ctx.wrap_matrix(w)?, None);
            }
            if let Some(t) = targets.get(1) {
                st.set(t.clone(), self.ctx.wrap_matrix(v)?, None);
            }
            return Ok(());
        }
        let func = self
            .program
            .functions
            .get(function)
            .cloned()
            .ok_or_else(|| SysDsError::runtime(format!("unknown function '{function}'")))?;
        if targets.len() > func.outputs.len() {
            return Err(SysDsError::runtime(format!(
                "'{function}' returns {} values, {} requested",
                func.outputs.len(),
                targets.len()
            )));
        }
        let mut local = SymbolTable::new();
        self.bind_call_args(&func, args, st, &mut local)?;
        self.exec_blocks(&func.blocks, &mut local)?;
        for (t, o) in targets.iter().zip(&func.outputs) {
            let entry = local.get(o).map_err(|_| {
                SysDsError::runtime(format!("function '{function}' did not assign output '{o}'"))
            })?;
            st.set(t.clone(), entry.data.clone(), entry.lineage.clone());
        }
        Ok(())
    }

    fn bind_call_args(
        &self,
        func: &CompiledFunction,
        args: &[(Option<String>, BasicBlock)],
        caller: &SymbolTable,
        local: &mut SymbolTable,
    ) -> Result<()> {
        let mut bound: Vec<Option<Slot>> = vec![None; func.params.len()];
        let mut pos = 0usize;
        for (name, block) in args {
            let slot = self.eval_expr_block(block, caller)?;
            match name {
                Some(n) => {
                    let idx = func
                        .params
                        .iter()
                        .position(|p| &p.name == n)
                        .ok_or_else(|| {
                            SysDsError::runtime(format!(
                                "unknown argument '{n}' for '{}'",
                                func.name
                            ))
                        })?;
                    bound[idx] = Some(slot);
                }
                None => {
                    while pos < bound.len() && bound[pos].is_some() {
                        pos += 1;
                    }
                    if pos >= bound.len() {
                        return Err(SysDsError::runtime(format!(
                            "too many arguments for '{}'",
                            func.name
                        )));
                    }
                    bound[pos] = Some(slot);
                    pos += 1;
                }
            }
        }
        for (p, b) in func.params.iter().zip(bound) {
            match (b, &p.default) {
                (Some(slot), _) => local.set(p.name.clone(), slot.data, slot.lineage),
                (None, Some(d)) => local.set(p.name.clone(), Data::Scalar(d.clone()), None),
                (None, None) => {
                    return Err(SysDsError::runtime(format!(
                        "missing argument '{}' for '{}'",
                        p.name, func.name
                    )))
                }
            }
        }
        Ok(())
    }

    // ---- transformencode / transformapply -------------------------------

    fn named_arg<'a>(
        args: &'a [(Option<String>, BasicBlock)],
        name: &str,
        position: usize,
    ) -> Option<&'a BasicBlock> {
        args.iter()
            .find(|(n, _)| n.as_deref() == Some(name))
            .map(|(_, b)| b)
            .or_else(|| {
                args.get(position)
                    .and_then(|(n, b)| if n.is_none() { Some(b) } else { None })
            })
    }

    fn exec_transformencode(
        &self,
        targets: &[String],
        args: &[(Option<String>, BasicBlock)],
        st: &mut SymbolTable,
    ) -> Result<()> {
        let target = Self::named_arg(args, "target", 0)
            .ok_or_else(|| SysDsError::runtime("transformencode needs target="))?;
        let spec = Self::named_arg(args, "spec", 1)
            .ok_or_else(|| SysDsError::runtime("transformencode needs spec="))?;
        let frame = self.eval_expr_block(target, st)?.data.as_frame()?;
        let spec_str = self
            .eval_expr_block(spec, st)?
            .data
            .as_scalar()?
            .to_display_string();
        let spec = parse_transform_spec(&spec_str)?;
        let enc = TransformEncoder::fit(&frame, &spec)?;
        let x = enc.apply(&frame)?;
        let meta = enc.to_metadata();
        if let Some(t) = targets.first() {
            st.set(t.clone(), self.ctx.wrap_matrix(x)?, None);
        }
        if let Some(t) = targets.get(1) {
            st.set(t.clone(), Data::Frame(Arc::new(meta)), None);
        }
        Ok(())
    }

    fn exec_transformapply(
        &self,
        targets: &[String],
        args: &[(Option<String>, BasicBlock)],
        st: &mut SymbolTable,
    ) -> Result<()> {
        let target = Self::named_arg(args, "target", 0)
            .ok_or_else(|| SysDsError::runtime("transformapply needs target="))?;
        let meta = Self::named_arg(args, "meta", 1)
            .ok_or_else(|| SysDsError::runtime("transformapply needs meta="))?;
        let frame = self.eval_expr_block(target, st)?.data.as_frame()?;
        let meta = self.eval_expr_block(meta, st)?.data.as_frame()?;
        let enc = TransformEncoder::from_metadata(&meta)?;
        let x = enc.apply(&frame)?;
        if let Some(t) = targets.first() {
            st.set(t.clone(), self.ctx.wrap_matrix(x)?, None);
        }
        Ok(())
    }

    /// The `paramserv` builtin (paper §2.3 (4)): mini-batch training with
    /// a local parameter server. `w = paramserv(X=X, y=y, epochs=20,
    /// batchsize=32, lr=0.1, mode="BSP", workers=4)`.
    fn exec_paramserv(
        &self,
        targets: &[String],
        args: &[(Option<String>, BasicBlock)],
        st: &mut SymbolTable,
    ) -> Result<()> {
        use crate::runtime::paramserver::{train_linreg, PsConfig, UpdateMode};
        let get = |name: &str, pos: usize| Self::named_arg(args, name, pos);
        let x = self
            .eval_expr_block(
                get("X", 0).ok_or_else(|| SysDsError::runtime("paramserv needs X="))?,
                st,
            )?
            .data
            .as_matrix()?;
        let y = self
            .eval_expr_block(
                get("y", 1).ok_or_else(|| SysDsError::runtime("paramserv needs y="))?,
                st,
            )?
            .data
            .as_matrix()?;
        let scalar_arg = |name: &str, default: f64| -> Result<f64> {
            match get(name, usize::MAX) {
                Some(b) => self.eval_expr_block(b, st)?.data.as_f64(),
                None => Ok(default),
            }
        };
        let epochs = scalar_arg("epochs", 20.0)? as usize;
        let batch = scalar_arg("batchsize", 32.0)? as usize;
        let lr = scalar_arg("lr", 0.1)?;
        let workers = scalar_arg("workers", self.ctx.config.num_threads as f64)? as usize;
        let mode = match get("mode", usize::MAX) {
            Some(b) => {
                let m = self
                    .eval_expr_block(b, st)?
                    .data
                    .as_scalar()?
                    .to_display_string();
                match m.as_str() {
                    "BSP" | "bsp" => UpdateMode::Bsp,
                    "ASP" | "asp" => UpdateMode::Asp,
                    other => return Err(SysDsError::runtime(format!("paramserv mode '{other}'"))),
                }
            }
            None => UpdateMode::Bsp,
        };
        let config = PsConfig {
            workers,
            epochs,
            batch_size: batch,
            learning_rate: lr,
            mode,
        };
        let w = train_linreg(&x, &y, &config)?;
        if let Some(t) = targets.first() {
            st.set(t.clone(), self.ctx.wrap_matrix(w)?, None);
        }
        Ok(())
    }

    // ---- parfor ----------------------------------------------------------

    /// Parallel for with result merge (paper §2.3: dedicated backends for
    /// parallel for loops, e.g. hyper-parameter tuning). Workers get
    /// deep-copied symbol tables; result variables (pre-existing variables
    /// written by the loop) are merged by comparing against the pre-loop
    /// value — SystemML's `ResultMergeLocalMemory` strategy.
    fn exec_parfor(
        &self,
        var: &str,
        iters: &[f64],
        body: &[Block],
        st: &mut SymbolTable,
    ) -> Result<()> {
        if iters.is_empty() {
            return Ok(());
        }
        let workers = self.ctx.config.num_threads.max(1).min(iters.len());
        let chunks: Vec<Vec<f64>> = (0..workers)
            .map(|w| iters.iter().copied().skip(w).step_by(workers).collect())
            .collect();
        let before = st.clone();
        let results: Vec<Result<SymbolTable>> = crossbeam::thread::scope(|s| {
            let handles: Vec<_> = chunks
                .iter()
                .enumerate()
                .map(|(w, chunk)| {
                    let mut local = before.clone();
                    s.spawn(move |_| -> Result<SymbolTable> {
                        let _worker = sysds_obs::set_worker(w as u64);
                        let _span =
                            sysds_obs::Span::enter_with(sysds_obs::Phase::ParforWorker, || {
                                format!("worker-{w}")
                            });
                        let start = std::time::Instant::now();
                        for &v in chunk {
                            local.set(var.to_string(), iter_value(v), None);
                            self.exec_blocks(body, &mut local)?;
                        }
                        if sysds_obs::stats_enabled() {
                            let c = sysds_obs::counters();
                            c.parfor_workers.fetch_add(1, Ordering::Relaxed);
                            c.parfor_iters
                                .fetch_add(chunk.len() as u64, Ordering::Relaxed);
                            c.parfor_worker_nanos
                                .fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                        }
                        Ok(local)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or_else(|p| {
                        Err(SysDsError::runtime(format!(
                            "parfor worker panicked: {}",
                            panic_message(p.as_ref())
                        )))
                    })
                })
                .collect()
        })
        .map_err(|p| {
            SysDsError::runtime(format!("parfor failed: {}", panic_message(p.as_ref())))
        })?;

        // Merge: result variables are those that existed before the loop.
        let mut merged: Vec<SymbolTable> = Vec::with_capacity(results.len());
        for r in results {
            merged.push(r?);
        }
        // Iterations are dealt round-robin (iteration k runs on worker
        // k % workers), so the lexically last iteration belongs to this
        // worker — NOT to the last worker in spawn order.
        let last_owner = (iters.len() - 1) % workers;
        // Merge order ends with the owner of the last iteration, so
        // last-write-wins conflicts resolve like a sequential loop.
        let merge_order: Vec<usize> = (0..merged.len())
            .filter(|&w| w != last_owner)
            .chain(std::iter::once(last_owner))
            .collect();
        for name in before.names() {
            let orig = before.get(&name)?.clone();
            match &orig.data {
                Data::Matrix(h) => {
                    let base = h.acquire()?;
                    let mut out: Option<Matrix> = None;
                    for &w in &merge_order {
                        let Ok(entry) = merged[w].get(&name) else {
                            continue;
                        };
                        let Ok(wm) = entry.data.as_matrix() else {
                            continue;
                        };
                        if wm.shape() != base.shape() {
                            // shape-changing writes: last iteration wins
                            out = Some((*wm).clone());
                            continue;
                        }
                        // compare-and-merge cells that differ from the base
                        let target = out.get_or_insert_with(|| (*base).clone());
                        for i in 0..base.rows() {
                            for j in 0..base.cols() {
                                let v = wm.get(i, j);
                                if v != base.get(i, j) {
                                    target.set(i, j, v);
                                }
                            }
                        }
                    }
                    if let Some(m) = out {
                        st.set(name.clone(), self.ctx.wrap_matrix(m.compact())?, None);
                    }
                }
                _ => {
                    // Scalars/frames: take the value from the worker that ran
                    // the lexically last iteration (deterministic).
                    if let Ok(e) = merged[last_owner].get(&name) {
                        st.set(name.clone(), e.data.clone(), e.lineage.clone());
                    }
                }
            }
        }
        Ok(())
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

fn iteration_values(from: f64, to: f64, step: f64) -> Vec<f64> {
    let mut out = Vec::new();
    let mut v = from;
    if step > 0.0 {
        while v <= to + 1e-12 {
            out.push(v);
            v += step;
        }
    } else {
        while v >= to - 1e-12 {
            out.push(v);
            v += step;
        }
    }
    out
}

fn iter_value(v: f64) -> Data {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        Data::Scalar(ScalarValue::I64(v as i64))
    } else {
        Data::from_f64(v)
    }
}

/// Parse a compact transform spec: `"recode=city,zip dummy=level bin=age:5"`.
fn parse_transform_spec(spec: &str) -> Result<TransformSpec> {
    let mut out = TransformSpec::new();
    for part in spec.split_whitespace() {
        let (kind, cols) = part
            .split_once('=')
            .ok_or_else(|| SysDsError::runtime(format!("malformed transform spec '{part}'")))?;
        for col in cols.split(',') {
            out = match kind {
                "recode" => out.recode(col),
                "dummy" | "dummycode" => out.dummy_code(col),
                "bin" => {
                    let (name, bins) = col.split_once(':').ok_or_else(|| {
                        SysDsError::runtime("bin spec needs 'column:bins'".to_string())
                    })?;
                    let bins: usize = bins
                        .parse()
                        .map_err(|_| SysDsError::runtime(format!("bad bin count '{bins}'")))?;
                    out.bin(name, bins)
                }
                other => {
                    return Err(SysDsError::runtime(format!(
                        "unknown transform kind '{other}'"
                    )))
                }
            };
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_values_forward_and_backward() {
        assert_eq!(iteration_values(1.0, 3.0, 1.0), vec![1.0, 2.0, 3.0]);
        assert_eq!(iteration_values(3.0, 1.0, -1.0), vec![3.0, 2.0, 1.0]);
        assert_eq!(iteration_values(1.0, 0.0, 1.0), Vec::<f64>::new());
        assert_eq!(iteration_values(1.0, 2.0, 0.5), vec![1.0, 1.5, 2.0]);
    }

    #[test]
    fn iter_value_types() {
        assert!(matches!(iter_value(2.0), Data::Scalar(ScalarValue::I64(2))));
        assert!(matches!(iter_value(2.5), Data::Scalar(ScalarValue::F64(_))));
    }

    #[test]
    fn transform_spec_parsing() {
        let s = parse_transform_spec("recode=a,b dummy=c bin=d:4").unwrap();
        // Applying to a frame is covered in frame tests; here we only
        // check acceptance/rejection of the syntax.
        let _ = s;
        assert!(parse_transform_spec("nonsense").is_err());
        assert!(parse_transform_spec("bin=x").is_err());
        assert!(parse_transform_spec("frob=x").is_err());
    }
}
