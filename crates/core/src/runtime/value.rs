//! Runtime data values and the symbol table.

use crate::compiler::hop::SizeInfo;
use crate::lineage::item::LineageItem;
use std::sync::Arc;
use sysds_common::hash::FxHashMap;
use sysds_common::{Result, ScalarValue, SysDsError};
use sysds_fed::FederatedMatrix;
use sysds_frame::Frame;
use sysds_tensor::Matrix;

/// A runtime value bound to a DML variable or instruction slot.
#[derive(Debug, Clone)]
pub enum Data {
    /// A matrix behind a buffer-pool-managed handle.
    Matrix(crate::runtime::bufferpool::MatrixHandle),
    Frame(Arc<Frame>),
    Scalar(ScalarValue),
    /// A federated matrix: metadata plus site connections (paper §2.4).
    Federated(Arc<FederatedMatrix>),
    /// Absent value (e.g. uninitialized slot).
    Empty,
}

impl Data {
    /// Wrap a matrix without buffer-pool registration (small/temporary).
    pub fn from_matrix(m: Matrix) -> Data {
        Data::Matrix(crate::runtime::bufferpool::MatrixHandle::unmanaged(m))
    }

    /// Wrap a scalar.
    pub fn from_f64(v: f64) -> Data {
        Data::Scalar(ScalarValue::F64(v))
    }

    /// Acquire the matrix (restoring from disk when evicted).
    pub fn as_matrix(&self) -> Result<Arc<Matrix>> {
        match self {
            Data::Matrix(h) => h.acquire(),
            Data::Scalar(s) => {
                // Scalars auto-lift to 1x1 matrices like in DML.
                Ok(Arc::new(Matrix::filled(1, 1, s.as_f64()?)))
            }
            other => Err(SysDsError::runtime(format!(
                "expected matrix, got {}",
                other.kind()
            ))),
        }
    }

    /// The scalar value, if this is a scalar (or 1x1 matrix).
    pub fn as_scalar(&self) -> Result<ScalarValue> {
        match self {
            Data::Scalar(s) => Ok(s.clone()),
            Data::Matrix(h) => {
                let m = h.acquire()?;
                Ok(ScalarValue::F64(m.as_scalar()?))
            }
            other => Err(SysDsError::runtime(format!(
                "expected scalar, got {}",
                other.kind()
            ))),
        }
    }

    /// The frame, if this is a frame.
    pub fn as_frame(&self) -> Result<Arc<Frame>> {
        match self {
            Data::Frame(f) => Ok(f.clone()),
            other => Err(SysDsError::runtime(format!(
                "expected frame, got {}",
                other.kind()
            ))),
        }
    }

    /// The federated matrix, if federated.
    pub fn as_federated(&self) -> Result<Arc<FederatedMatrix>> {
        match self {
            Data::Federated(f) => Ok(f.clone()),
            other => Err(SysDsError::runtime(format!(
                "expected federated matrix, got {}",
                other.kind()
            ))),
        }
    }

    /// Scalar convenience: numeric value.
    pub fn as_f64(&self) -> Result<f64> {
        self.as_scalar()?.as_f64()
    }

    /// Scalar convenience: integer value.
    pub fn as_i64(&self) -> Result<i64> {
        self.as_scalar()?.as_i64()
    }

    /// Scalar convenience: boolean value.
    pub fn as_bool(&self) -> Result<bool> {
        self.as_scalar()?.as_bool()
    }

    /// A short kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Data::Matrix(_) => "matrix",
            Data::Frame(_) => "frame",
            Data::Scalar(_) => "scalar",
            Data::Federated(_) => "federated",
            Data::Empty => "empty",
        }
    }

    /// Size information for dynamic recompilation.
    pub fn size_info(&self) -> SizeInfo {
        match self {
            Data::Matrix(h) => match h.shape() {
                Some((r, c)) => SizeInfo::matrix(r, c, h.sparsity()),
                None => SizeInfo::unknown(),
            },
            Data::Frame(f) => SizeInfo::matrix(f.rows(), f.cols(), Some(1.0)),
            Data::Scalar(_) => SizeInfo::scalar(),
            Data::Federated(f) => SizeInfo::matrix(f.rows(), f.cols(), Some(1.0)),
            Data::Empty => SizeInfo::unknown(),
        }
    }
}

/// A symbol-table entry: value plus its lineage (paper §3.1: "lineage
/// DAGs of live variables").
#[derive(Debug, Clone)]
pub struct Entry {
    pub data: Data,
    pub lineage: Option<Arc<LineageItem>>,
}

/// The symbol table of live variables.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    vars: FxHashMap<String, Entry>,
}

impl SymbolTable {
    /// Empty table.
    pub fn new() -> SymbolTable {
        SymbolTable::default()
    }

    /// Bind a variable.
    pub fn set(&mut self, name: impl Into<String>, data: Data, lineage: Option<Arc<LineageItem>>) {
        self.vars.insert(name.into(), Entry { data, lineage });
    }

    /// Look up a variable.
    pub fn get(&self, name: &str) -> Result<&Entry> {
        self.vars
            .get(name)
            .ok_or_else(|| SysDsError::runtime(format!("undefined variable '{name}'")))
    }

    /// Look up a variable if present.
    pub fn try_get(&self, name: &str) -> Option<&Entry> {
        self.vars.get(name)
    }

    /// Remove a variable.
    pub fn remove(&mut self, name: &str) -> Option<Entry> {
        self.vars.remove(name)
    }

    /// Whether a variable is bound.
    pub fn contains(&self, name: &str) -> bool {
        self.vars.contains_key(name)
    }

    /// Iterate over bindings.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Entry)> {
        self.vars.iter()
    }

    /// Variable names.
    pub fn names(&self) -> Vec<String> {
        self.vars.keys().cloned().collect()
    }

    /// Build the size environment for recompilation.
    pub fn size_env(&self) -> crate::compiler::size::SizeEnv {
        let mut env = crate::compiler::size::SizeEnv::default();
        for (name, entry) in &self.vars {
            env.insert(name.clone(), entry.data.size_info());
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let d = Data::Scalar(ScalarValue::F64(2.5));
        assert_eq!(d.as_f64().unwrap(), 2.5);
        assert_eq!(d.as_i64().unwrap(), 2);
        assert!(d.as_bool().unwrap());
        assert_eq!(d.kind(), "scalar");
    }

    #[test]
    fn scalar_lifts_to_matrix() {
        let d = Data::from_f64(3.0);
        let m = d.as_matrix().unwrap();
        assert_eq!(m.shape(), (1, 1));
        assert_eq!(m.get(0, 0), 3.0);
    }

    #[test]
    fn one_by_one_matrix_lowers_to_scalar() {
        let d = Data::from_matrix(Matrix::filled(1, 1, 7.0));
        assert_eq!(d.as_f64().unwrap(), 7.0);
        let big = Data::from_matrix(Matrix::zeros(2, 2));
        assert!(big.as_scalar().is_err());
    }

    #[test]
    fn kind_mismatch_errors() {
        let d = Data::Scalar(ScalarValue::Str("x".into()));
        assert!(d.as_frame().is_err());
        assert!(Data::Empty.as_matrix().is_err());
    }

    #[test]
    fn symbol_table_basics() {
        let mut st = SymbolTable::new();
        st.set("x", Data::from_f64(1.0), None);
        assert!(st.contains("x"));
        assert_eq!(st.get("x").unwrap().data.as_f64().unwrap(), 1.0);
        assert!(st.get("y").is_err());
        st.remove("x");
        assert!(!st.contains("x"));
    }

    #[test]
    fn size_env_reflects_data() {
        let mut st = SymbolTable::new();
        st.set("X", Data::from_matrix(Matrix::zeros(5, 3)), None);
        st.set("s", Data::from_f64(1.0), None);
        let env = st.size_env();
        assert_eq!(env["X"].rows.value(), Some(5));
        assert!(env["s"].scalar);
    }
}
