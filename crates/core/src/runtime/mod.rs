//! The runtime control program (paper §2.3 (3)–(4)).

pub mod bufferpool;
pub mod instructions;
pub mod interpreter;
pub mod paramserver;
pub mod value;

pub use interpreter::Interpreter;
pub use value::Data;
