//! Instruction execution: CP, distributed, and federated instructions
//! (paper §2.3 (4)), with lineage tracing and reuse hooks around every
//! operation (§3.1).

use crate::compiler::hop::{ExecType, HopOp};
use crate::compiler::lower::Instr;
use crate::lineage::{LineageCache, LineageItem};
use crate::runtime::bufferpool::BufferPool;
use crate::runtime::value::{Data, SymbolTable};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;
use sysds_common::{EngineConfig, Result, ScalarValue, SysDsError};
use sysds_dist::BlockedMatrix;
use sysds_tensor::kernels::fused::{FusedInput, FusedOutput, FusedTemplate, TemplateNode};
use sysds_tensor::kernels::*;
use sysds_tensor::Matrix;

/// Shared execution context threaded through the interpreter.
pub struct ExecCtx {
    pub config: EngineConfig,
    pub cache: Arc<LineageCache>,
    pub pool: Arc<BufferPool>,
    /// Captured `print` output (also echoed to stdout when configured).
    pub stdout: Mutex<Vec<String>>,
    /// Echo prints to the process stdout.
    pub echo: bool,
}

static SEED_COUNTER: AtomicU64 = AtomicU64::new(0x5D5_0001);

impl ExecCtx {
    /// Create a context from a configuration.
    pub fn new(config: EngineConfig) -> Result<ExecCtx> {
        if config.stats {
            sysds_obs::enable_stats();
        }
        if let Some(path) = &config.trace_file {
            sysds_obs::enable_trace(path)
                .map_err(|e| SysDsError::runtime(format!("cannot open trace file: {e}")))?;
        }
        if config.chrome_trace_file.is_some() {
            // Buffer spans in memory; the caller exports them as Chrome
            // trace_event JSON after the run (see `SystemDS`/CLI).
            sysds_obs::enable_memory_trace();
        }
        let pool = Arc::new(BufferPool::new(
            config.buffer_pool_limit,
            config.spill_dir.clone(),
        )?);
        let cache = Arc::new(LineageCache::new(config.reuse, config.reuse_cache_limit));
        Ok(ExecCtx {
            config,
            cache,
            pool,
            stdout: Mutex::new(Vec::new()),
            echo: false,
        })
    }

    fn print(&self, line: String) {
        if self.echo {
            println!("{line}");
        }
        self.stdout.lock().push(line);
    }

    /// Drain captured print output.
    pub fn take_stdout(&self) -> Vec<String> {
        std::mem::take(&mut self.stdout.lock())
    }

    /// Wrap a matrix result, registering large ones with the buffer pool.
    pub fn wrap_matrix(&self, m: Matrix) -> Result<Data> {
        // Tiny results are not worth pool bookkeeping.
        if m.in_memory_size() >= 1 << 16 {
            Ok(Data::Matrix(self.pool.register(m)?))
        } else {
            Ok(Data::from_matrix(m))
        }
    }
}

/// One instruction slot: value plus lineage.
#[derive(Debug, Clone)]
pub struct Slot {
    pub data: Data,
    pub lineage: Option<Arc<LineageItem>>,
}

impl Slot {
    fn new(data: Data, lineage: Option<Arc<LineageItem>>) -> Slot {
        Slot { data, lineage }
    }
}

/// Execute one lowered instruction against the slot file.
pub fn execute(
    instr: &Instr,
    slots: &mut [Option<Slot>],
    symbols: &SymbolTable,
    ctx: &ExecCtx,
) -> Result<()> {
    let out = match &instr.op {
        HopOp::Lit(v) => {
            let lin = trace_enabled(ctx).then(|| LineageItem::leaf(format!("lit:{v}")));
            Slot::new(Data::Scalar(v.clone()), lin)
        }
        HopOp::Var(name) => {
            let entry = symbols.get(name)?;
            let lin = if trace_enabled(ctx) {
                Some(
                    entry
                        .lineage
                        .clone()
                        .unwrap_or_else(|| data_leaf(&entry.data, name)),
                )
            } else {
                None
            };
            Slot::new(entry.data.clone(), lin)
        }
        op => {
            let inputs: Vec<&Slot> = instr
                .inputs
                .iter()
                .map(|&i| slots[i].as_ref().expect("inputs computed before use"))
                .collect();
            let out = execute_op(op, instr.exec, &inputs, ctx)?;
            if sysds_obs::stats_enabled() {
                audit_output(instr, &out.data);
            }
            out
        }
    };
    slots[instr.out] = Some(out);
    Ok(())
}

/// Feed the estimate-vs-actual audit: compare the instruction's
/// compile-time `SizeInfo` against the materialized output (paper §2.3's
/// memory estimates, validated instead of trusted).
fn audit_output(instr: &Instr, data: &Data) {
    let Data::Matrix(h) = data else { return };
    let Some((rows, cols)) = h.shape() else {
        return;
    };
    let actual_bytes = Matrix::estimate_size(rows, cols, h.sparsity().unwrap_or(1.0));
    let est = sysds_obs::EstimateInfo {
        rows: instr.size.rows.value().map(|v| v as u64),
        cols: instr.size.cols.value().map(|v| v as u64),
        bytes: instr.size.memory_estimate().map(|v| v as u64),
    };
    sysds_obs::audit::record(
        &instr.op.opcode(),
        &est,
        rows as u64,
        cols as u64,
        actual_bytes as u64,
    );
}

fn trace_enabled(ctx: &ExecCtx) -> bool {
    ctx.config.lineage
}

/// Lineage leaf for a value without recorded lineage (script inputs):
/// identified by object id, "inputs (by name)" plus identity.
fn data_leaf(data: &Data, name: &str) -> Arc<LineageItem> {
    match data {
        Data::Matrix(h) => LineageItem::leaf(format!("input:{name}#{}", h.id())),
        Data::Scalar(s) => LineageItem::leaf(format!("lit:{s}")),
        Data::Frame(_) => LineageItem::leaf(format!("input-frame:{name}")),
        Data::Federated(_) => LineageItem::leaf(format!("input-fed:{name}")),
        Data::Empty => LineageItem::leaf("empty"),
    }
}

fn out_lineage(op: &HopOp, inputs: &[&Slot], extra: Option<String>) -> Option<Arc<LineageItem>> {
    let mut ins = Vec::with_capacity(inputs.len());
    for s in inputs {
        ins.push(s.lineage.clone()?);
    }
    let opcode = extra.unwrap_or_else(|| op.opcode());
    Some(LineageItem::node(opcode, ins))
}

fn execute_op(op: &HopOp, exec: ExecType, inputs: &[&Slot], ctx: &ExecCtx) -> Result<Slot> {
    // 1. Compute output lineage and probe the reuse cache.
    let mut lineage = if trace_enabled(ctx) {
        // `rand` embeds its (possibly generated) seed below instead.
        if matches!(op, HopOp::Nary("rand")) {
            None
        } else {
            out_lineage(op, inputs, None)
        }
    } else {
        None
    };
    if let Some(lin) = &lineage {
        if cacheable(op) {
            if let Some(hit) = ctx.cache.probe(lin) {
                return Ok(Slot::new(ctx.wrap_matrix((*hit).clone())?, lineage));
            }
            // Partial reuse: compensation plans over cbind (paper §3.1).
            if let HopOp::Tsmm = op {
                let xi = inputs[0].data.as_matrix()?;
                if let Some(hit) = ctx.cache.probe_partial_tsmm(
                    lin,
                    &xi,
                    ctx.config.num_threads,
                    ctx.config.native_blas,
                )? {
                    ctx.cache.put(lin, hit.clone(), u128::MAX / 2);
                    return Ok(Slot::new(ctx.wrap_matrix((*hit).clone())?, lineage));
                }
            }
            if let HopOp::Tmv = op {
                let xi = inputs[0].data.as_matrix()?;
                let y = inputs[1].data.as_matrix()?;
                if let Some(hit) =
                    ctx.cache
                        .probe_partial_tmv(lin, &xi, &y, ctx.config.num_threads)?
                {
                    ctx.cache.put(lin, hit.clone(), u128::MAX / 2);
                    return Ok(Slot::new(ctx.wrap_matrix((*hit).clone())?, lineage));
                }
            }
        }
    }

    // 2. Execute. The span is inert (one relaxed load) unless `--stats`
    // or `--trace` is on; the existing Instant keeps feeding the lineage
    // cache's cost model either way.
    let start = Instant::now();
    let (data, lineage_override) = {
        let _span = sysds_obs::Span::enter_with(sysds_obs::Phase::Instruction, || op.opcode());
        dispatch(op, exec, inputs, ctx)?
    };
    let elapsed = start.elapsed().as_nanos();
    if let Some(l) = lineage_override {
        lineage = trace_enabled(ctx).then_some(l);
    }

    // 3. Offer the result for caching.
    if let (Some(lin), Data::Matrix(h)) = (&lineage, &data) {
        if cacheable(op) {
            ctx.cache.put(lin, h.acquire()?, elapsed);
        }
    }
    Ok(Slot::new(data, lineage))
}

/// Deterministic, compute-heavy ops eligible for lineage caching.
fn cacheable(op: &HopOp) -> bool {
    matches!(
        op,
        HopOp::MatMul
            | HopOp::Tsmm
            | HopOp::Tmv
            | HopOp::Transpose
            | HopOp::Agg(_, _)
            | HopOp::Binary(_)
            | HopOp::Unary(_)
            | HopOp::Fused(_)
            | HopOp::Nary("solve")
            | HopOp::Nary("inv")
            | HopOp::Nary("cholesky")
            | HopOp::Nary("cbind")
            | HopOp::Nary("rbind")
            | HopOp::Nary("rand") // seeded rand is deterministic; seed is in the lineage
    )
}

type DispatchResult = Result<(Data, Option<Arc<LineageItem>>)>;

fn dispatch(op: &HopOp, exec: ExecType, inputs: &[&Slot], ctx: &ExecCtx) -> DispatchResult {
    let data = |k: usize| -> &Data { &inputs[k].data };
    match op {
        HopOp::Unary(u) => {
            let out = match data(0) {
                Data::Scalar(s) => match u {
                    UnaryOp::Not => Data::Scalar(ScalarValue::Bool(!s.as_bool()?)),
                    UnaryOp::Neg => match s {
                        ScalarValue::I64(v) => Data::Scalar(ScalarValue::I64(-v)),
                        other => Data::Scalar(ScalarValue::F64(-other.as_f64()?)),
                    },
                    _ => Data::Scalar(ScalarValue::F64(u.apply(s.as_f64()?))),
                },
                d => ctx.wrap_matrix(elementwise::unary_mt(
                    *u,
                    &*d.as_matrix()?,
                    ctx.config.num_threads,
                ))?,
            };
            Ok((out, None))
        }
        HopOp::Binary(b) => binary_dispatch(*b, data(0), data(1), exec, ctx),
        HopOp::MatMul => {
            // Federated mat-vec keeps results at the sites.
            if let Data::Federated(f) = data(0) {
                let v = data(1).as_matrix()?;
                let out = f.mat_vec(&v)?;
                return Ok((Data::Federated(Arc::new(out)), None));
            }
            let (a, b) = (data(0).as_matrix()?, data(1).as_matrix()?);
            let m = if exec == ExecType::Dist {
                dist_matmul(&a, &b, ctx)?
            } else {
                matmult::matmul(&a, &b, ctx.config.num_threads, ctx.config.native_blas)?
            };
            Ok((ctx.wrap_matrix(m)?, None))
        }
        HopOp::Tsmm => {
            if let Data::Federated(f) = data(0) {
                return Ok((ctx.wrap_matrix(f.tsmm()?)?, None));
            }
            let x = data(0).as_matrix()?;
            let m = if exec == ExecType::Dist {
                let bm =
                    BlockedMatrix::from_matrix(&x, ctx.config.block_size, ctx.config.num_threads)?;
                bm.tsmm(1)?
            } else {
                tsmm::tsmm(&x, ctx.config.num_threads, ctx.config.native_blas)
            };
            Ok((ctx.wrap_matrix(m)?, None))
        }
        HopOp::Tmv => {
            if let (Data::Federated(fx), Data::Federated(fy)) = (data(0), data(1)) {
                return Ok((ctx.wrap_matrix(fx.tmv(fy)?)?, None));
            }
            let (x, y) = (data(0).as_matrix()?, data(1).as_matrix()?);
            Ok((
                ctx.wrap_matrix(tsmm::tmv(&x, &y, ctx.config.num_threads)?)?,
                None,
            ))
        }
        HopOp::Transpose => {
            let x = data(0).as_matrix()?;
            Ok((
                ctx.wrap_matrix(reorg::transpose(&x, ctx.config.num_threads))?,
                None,
            ))
        }
        HopOp::Agg(f, d) => {
            if let Data::Federated(fed) = data(0) {
                return fed_agg(*f, *d, fed, ctx);
            }
            let x = data(0).as_matrix()?;
            let threads = ctx.config.num_threads;
            match d {
                Direction::Full => Ok((
                    Data::from_f64(aggregate::aggregate_full_mt(*f, &x, threads)?),
                    None,
                )),
                _ => Ok((
                    ctx.wrap_matrix(aggregate::aggregate_axis_mt(*f, *d, &x, threads)?)?,
                    None,
                )),
            }
        }
        HopOp::Fused(t) => fused_dispatch(t, inputs, ctx),
        HopOp::Index => {
            let x = data(0).as_matrix()?;
            let (rl, rh) = (data(1).as_i64()?, data(2).as_i64()?);
            let (cl, ch) = (data(3).as_i64()?, data(4).as_i64()?);
            let (r, c) = to_ranges(&x, rl, rh, cl, ch)?;
            Ok((ctx.wrap_matrix(indexing::slice(&x, r, c)?)?, None))
        }
        HopOp::LeftIndex => {
            let x = data(0).as_matrix()?;
            let v = data(1).as_matrix()?;
            let (rl, rh) = (data(2).as_i64()?, data(3).as_i64()?);
            let (cl, ch) = (data(4).as_i64()?, data(5).as_i64()?);
            let (r, c) = to_ranges(&x, rl, rh, cl, ch)?;
            Ok((ctx.wrap_matrix(indexing::assign(&x, r, c, &v)?)?, None))
        }
        HopOp::Nary(name) => nary_dispatch(name, inputs, ctx),
        HopOp::Lit(_) | HopOp::Var(_) => unreachable!("handled by caller"),
    }
}

fn to_ranges(
    x: &Matrix,
    rl: i64,
    rh: i64,
    cl: i64,
    ch: i64,
) -> Result<(std::ops::Range<usize>, std::ops::Range<usize>)> {
    let check = |lo: i64, hi: i64, n: usize, what: &str| -> Result<std::ops::Range<usize>> {
        if lo < 1 || hi < lo || hi as usize > n {
            return Err(SysDsError::IndexOutOfBounds {
                msg: format!("{what} range [{lo}:{hi}] of {n}"),
            });
        }
        Ok((lo as usize - 1)..(hi as usize))
    };
    Ok((
        check(rl, rh, x.rows(), "row")?,
        check(cl, ch, x.cols(), "column")?,
    ))
}

fn binary_dispatch(
    b: BinaryOp,
    l: &Data,
    r: &Data,
    exec: ExecType,
    ctx: &ExecCtx,
) -> DispatchResult {
    match (l, r) {
        (Data::Scalar(a), Data::Scalar(c)) => {
            // String concatenation with `+`.
            if b == BinaryOp::Add
                && (matches!(a, ScalarValue::Str(_)) || matches!(c, ScalarValue::Str(_)))
            {
                return Ok((
                    Data::Scalar(ScalarValue::Str(format!(
                        "{}{}",
                        a.to_display_string(),
                        c.to_display_string()
                    ))),
                    None,
                ));
            }
            let v = b.apply(a.as_f64()?, c.as_f64()?);
            let out = match b {
                BinaryOp::Eq
                | BinaryOp::Neq
                | BinaryOp::Lt
                | BinaryOp::Le
                | BinaryOp::Gt
                | BinaryOp::Ge
                | BinaryOp::And
                | BinaryOp::Or => Data::Scalar(ScalarValue::Bool(v != 0.0)),
                _ if matches!(a, ScalarValue::I64(_) | ScalarValue::Bool(_))
                    && matches!(c, ScalarValue::I64(_) | ScalarValue::Bool(_))
                    && v.fract() == 0.0
                    && v.is_finite() =>
                {
                    Data::Scalar(ScalarValue::I64(v as i64))
                }
                _ => Data::from_f64(v),
            };
            Ok((out, None))
        }
        (Data::Federated(f), Data::Scalar(c)) => {
            // Push scalar ops to the sites; the result stays federated.
            let out = f.scalar_op(b, c.as_f64()?)?;
            Ok((Data::Federated(Arc::new(out)), None))
        }
        (Data::Scalar(a), m) => {
            let out =
                elementwise::binary_sm_mt(b, a.as_f64()?, &*m.as_matrix()?, ctx.config.num_threads);
            Ok((ctx.wrap_matrix(out)?, None))
        }
        (m, Data::Scalar(c)) => {
            let out =
                elementwise::binary_ms_mt(b, &*m.as_matrix()?, c.as_f64()?, ctx.config.num_threads);
            Ok((ctx.wrap_matrix(out)?, None))
        }
        (Data::Federated(a), Data::Federated(c)) => {
            let out = a.binary_op(b, c)?;
            Ok((Data::Federated(Arc::new(out)), None))
        }
        (a, c) => {
            let (ma, mc) = (a.as_matrix()?, c.as_matrix()?);
            let out = if exec == ExecType::Dist && ma.shape() == mc.shape() {
                let da =
                    BlockedMatrix::from_matrix(&ma, ctx.config.block_size, ctx.config.num_threads)?;
                let db =
                    BlockedMatrix::from_matrix(&mc, ctx.config.block_size, ctx.config.num_threads)?;
                da.elementwise(b, &db)?.to_matrix()
            } else {
                elementwise::binary_mm_mt(b, &ma, &mc, ctx.config.num_threads)?
            };
            Ok((ctx.wrap_matrix(out)?, None))
        }
    }
}

/// Execute a fused template: the one-pass kernel when every operand is a
/// local matrix (of one common shape) or a numeric scalar; otherwise the
/// template replays op by op through the regular dispatch (federated or
/// frame operands, shape drift after a stale plan).
fn fused_dispatch(t: &FusedTemplate, inputs: &[&Slot], ctx: &ExecCtx) -> DispatchResult {
    enum Operand {
        M(Arc<Matrix>),
        S(f64),
    }
    let mut operands: Vec<Operand> = Vec::with_capacity(inputs.len());
    let mut shape: Option<(usize, usize)> = None;
    for s in inputs {
        match &s.data {
            Data::Matrix(h) => {
                let m = h.acquire()?;
                let dims = (m.rows(), m.cols());
                if *shape.get_or_insert(dims) != dims {
                    return fused_fallback(t, inputs, ctx);
                }
                operands.push(Operand::M(m));
            }
            Data::Scalar(v) => match v.as_f64() {
                Ok(x) => operands.push(Operand::S(x)),
                Err(_) => return fused_fallback(t, inputs, ctx),
            },
            _ => return fused_fallback(t, inputs, ctx),
        }
    }
    let Some((m, n)) = shape else {
        // All-scalar at runtime (sizes drifted): replay.
        return fused_fallback(t, inputs, ctx);
    };
    let fused_inputs: Vec<FusedInput> = operands
        .iter()
        .map(|o| match o {
            Operand::M(m) => FusedInput::Matrix(m),
            Operand::S(x) => FusedInput::Scalar(*x),
        })
        .collect();
    let out = fused::eval(t, &fused_inputs, ctx.config.num_threads)?;
    if sysds_obs::stats_enabled() {
        let counters = sysds_obs::counters();
        counters.fusion_hits.fetch_add(1, Ordering::Relaxed);
        counters.fusion_bytes_saved.fetch_add(
            (t.saved_intermediates * m * n * std::mem::size_of::<f64>()) as u64,
            Ordering::Relaxed,
        );
    }
    match out {
        FusedOutput::Scalar(v) => Ok((Data::from_f64(v), None)),
        FusedOutput::Matrix(out) => Ok((ctx.wrap_matrix(out)?, None)),
    }
}

/// Replay a fused template node by node through the regular operator
/// dispatch. Semantically identical to the unfused plan (including
/// broadcasts and federated pushdown); counts no fusion hit.
fn fused_fallback(t: &FusedTemplate, inputs: &[&Slot], ctx: &ExecCtx) -> DispatchResult {
    t.validate()?;
    let mut slots: Vec<Slot> = Vec::with_capacity(t.nodes.len());
    for node in &t.nodes {
        let slot = match node {
            TemplateNode::Input(k) => (*inputs[*k]).clone(),
            TemplateNode::Const(c) => Slot::new(Data::from_f64(*c), None),
            TemplateNode::Unary(u, a) => {
                let (data, _) = dispatch(&HopOp::Unary(*u), ExecType::Cp, &[&slots[*a]], ctx)?;
                Slot::new(data, None)
            }
            TemplateNode::Binary(b, a, c) => {
                let (data, _) = dispatch(
                    &HopOp::Binary(*b),
                    ExecType::Cp,
                    &[&slots[*a], &slots[*c]],
                    ctx,
                )?;
                Slot::new(data, None)
            }
        };
        slots.push(slot);
    }
    let root = &slots[t.root];
    match t.agg {
        Some((f, d)) => dispatch(&HopOp::Agg(f, d), ExecType::Cp, &[root], ctx),
        None => Ok((root.data.clone(), None)),
    }
}

fn fed_agg(
    f: AggFn,
    d: Direction,
    fed: &Arc<sysds_fed::FederatedMatrix>,
    ctx: &ExecCtx,
) -> DispatchResult {
    match (f, d) {
        (AggFn::Sum, Direction::Col) => Ok((ctx.wrap_matrix(fed.col_sums()?)?, None)),
        (AggFn::Sum, Direction::Full) => {
            let cs = fed.col_sums()?;
            Ok((
                Data::from_f64(aggregate::aggregate_full(AggFn::Sum, &cs)?),
                None,
            ))
        }
        (AggFn::SumSq, Direction::Full) => Ok((Data::from_f64(fed.sum_sq()?), None)),
        (AggFn::Mean, Direction::Full) => {
            let cs = fed.col_sums()?;
            let total = aggregate::aggregate_full(AggFn::Sum, &cs)?;
            Ok((
                Data::from_f64(total / (fed.rows() * fed.cols()) as f64),
                None,
            ))
        }
        _ => Err(SysDsError::Federated(format!(
            "aggregate {f:?}/{d:?} not supported on federated matrices"
        ))),
    }
}

fn nary_dispatch(name: &str, inputs: &[&Slot], ctx: &ExecCtx) -> DispatchResult {
    let data = |k: usize| -> &Data { &inputs[k].data };
    match name {
        "rand" => {
            let rows = data(0).as_i64()? as usize;
            let cols = data(1).as_i64()? as usize;
            let min = data(2).as_f64()?;
            let max = data(3).as_f64()?;
            let sparsity = data(4).as_f64()?;
            let mut seed = data(5).as_i64()?;
            let pdf = data(6).as_scalar()?.to_display_string();
            if seed < 0 {
                // Non-determinism is made explicit: generate a fresh seed
                // and record it in the lineage (paper §3.1).
                seed = SEED_COUNTER.fetch_add(1, Ordering::Relaxed) as i64;
            }
            let m = match pdf.as_str() {
                "normal" => {
                    let base = gen::rand_normal(rows, cols, sparsity, seed as u64);
                    // scale into [min,max] semantics not defined for normal;
                    // keep standard normal like SystemDS.
                    base
                }
                _ => gen::rand_uniform(rows, cols, min, max, sparsity, seed as u64),
            };
            let lin = trace_enabled(ctx).then(|| {
                LineageItem::leaf(format!(
                    "rand:{rows}:{cols}:{min}:{max}:{sparsity}:{seed}:{pdf}"
                ))
            });
            Ok((ctx.wrap_matrix(m)?, lin))
        }
        "matrix" => {
            let rows = data(1).as_i64()? as usize;
            let cols = data(2).as_i64()? as usize;
            let m = match data(0) {
                Data::Scalar(s) => Matrix::filled(rows, cols, s.as_f64()?),
                d => reorg::reshape(&*d.as_matrix()?, rows, cols)?,
            };
            Ok((ctx.wrap_matrix(m)?, None))
        }
        "seq" => {
            let (f, t, i) = (data(0).as_f64()?, data(1).as_f64()?, data(2).as_f64()?);
            Ok((ctx.wrap_matrix(gen::seq(f, t, i)?)?, None))
        }
        "solve" => {
            let (a, b) = (data(0).as_matrix()?, data(1).as_matrix()?);
            Ok((ctx.wrap_matrix(solve::solve(&a, &b)?)?, None))
        }
        "inv" => Ok((
            ctx.wrap_matrix(solve::inverse(&*data(0).as_matrix()?)?)?,
            None,
        )),
        "cholesky" => Ok((
            ctx.wrap_matrix(solve::cholesky(&*data(0).as_matrix()?)?)?,
            None,
        )),
        "det" => Ok((Data::from_f64(solve::det(&*data(0).as_matrix()?)?), None)),
        "diag" => Ok((ctx.wrap_matrix(reorg::diag(&*data(0).as_matrix()?)?)?, None)),
        "trace" => Ok((
            Data::from_f64(aggregate::trace(&*data(0).as_matrix()?)?),
            None,
        )),
        "nrow" => Ok((
            Data::Scalar(ScalarValue::I64(dim_of(data(0), true)? as i64)),
            None,
        )),
        "ncol" => Ok((
            Data::Scalar(ScalarValue::I64(dim_of(data(0), false)? as i64)),
            None,
        )),
        "length" => {
            let (r, c) = (dim_of(data(0), true)?, dim_of(data(0), false)?);
            Ok((Data::Scalar(ScalarValue::I64((r * c) as i64)), None))
        }
        "nnz" => Ok((
            Data::Scalar(ScalarValue::I64(data(0).as_matrix()?.nnz() as i64)),
            None,
        )),
        "cbind" => {
            let (a, b) = (data(0).as_matrix()?, data(1).as_matrix()?);
            Ok((ctx.wrap_matrix(indexing::cbind(&a, &b)?)?, None))
        }
        "rbind" => {
            let (a, b) = (data(0).as_matrix()?, data(1).as_matrix()?);
            Ok((ctx.wrap_matrix(indexing::rbind(&a, &b)?)?, None))
        }
        "cumsum" => Ok((
            ctx.wrap_matrix(aggregate::cumsum(&*data(0).as_matrix()?))?,
            None,
        )),
        "cumprod" => Ok((
            ctx.wrap_matrix(aggregate::cumprod(&*data(0).as_matrix()?))?,
            None,
        )),
        "rev" => Ok((ctx.wrap_matrix(reorg::rev(&*data(0).as_matrix()?))?, None)),
        "quantile" => {
            let x = data(0).as_matrix()?;
            let p = data(1).as_f64()?;
            Ok((Data::from_f64(aggregate::quantile(&x, p)?), None))
        }
        "median" => Ok((
            Data::from_f64(aggregate::median(&*data(0).as_matrix()?)?),
            None,
        )),
        "table" => {
            let (a, b) = (data(0).as_matrix()?, data(1).as_matrix()?);
            Ok((ctx.wrap_matrix(gen::table(&a, &b)?)?, None))
        }
        "outer" => {
            let (a, b) = (data(0).as_matrix()?, data(1).as_matrix()?);
            let opname = data(2).as_scalar()?.to_display_string();
            let op = match opname.as_str() {
                "+" => BinaryOp::Add,
                "-" => BinaryOp::Sub,
                "*" => BinaryOp::Mul,
                "/" => BinaryOp::Div,
                "<" => BinaryOp::Lt,
                "<=" => BinaryOp::Le,
                ">" => BinaryOp::Gt,
                ">=" => BinaryOp::Ge,
                "==" => BinaryOp::Eq,
                "!=" => BinaryOp::Neq,
                "min" => BinaryOp::Min,
                "max" => BinaryOp::Max,
                other => return Err(SysDsError::runtime(format!("outer: unknown op '{other}'"))),
            };
            Ok((ctx.wrap_matrix(gen::outer(&a, &b, op)?)?, None))
        }
        "rowIndexMax" => Ok((
            ctx.wrap_matrix(aggregate::row_index_max(&*data(0).as_matrix()?))?,
            None,
        )),
        "order" => {
            let x = data(0).as_matrix()?;
            let by = data(1).as_i64()?;
            if by < 1 || by as usize > x.cols() {
                return Err(SysDsError::IndexOutOfBounds {
                    msg: format!("order by column {by}"),
                });
            }
            let dec = data(2).as_bool()?;
            let idx = data(3).as_bool()?;
            Ok((
                ctx.wrap_matrix(reorg::order(&x, by as usize - 1, dec, idx)?)?,
                None,
            ))
        }
        "removeEmpty" => {
            let x = data(0).as_matrix()?;
            let margin = data(1).as_scalar()?.to_display_string();
            let by_rows = match margin.as_str() {
                "rows" => true,
                "cols" => false,
                other => return Err(SysDsError::runtime(format!("removeEmpty margin '{other}'"))),
            };
            Ok((ctx.wrap_matrix(indexing::remove_empty(&x, by_rows))?, None))
        }
        "replace" => {
            let x = data(0).as_matrix()?;
            let (p, r) = (data(1).as_f64()?, data(2).as_f64()?);
            Ok((ctx.wrap_matrix(indexing::replace(&x, p, r))?, None))
        }
        "ifelse" => match data(0) {
            Data::Scalar(s) => {
                let pick = if s.as_bool()? { data(1) } else { data(2) };
                Ok((
                    pick.clone(),
                    inputs[if s.as_bool()? { 1 } else { 2 }].lineage.clone(),
                ))
            }
            d => {
                let c = d.as_matrix()?;
                let (y, n) = (data(1).as_matrix()?, data(2).as_matrix()?);
                Ok((ctx.wrap_matrix(elementwise::ifelse(&c, &y, &n)?)?, None))
            }
        },
        "as.scalar" => Ok((Data::Scalar(data(0).as_scalar()?), None)),
        "as.matrix" => Ok((ctx.wrap_matrix((*data(0).as_matrix()?).clone())?, None)),
        "as.integer" => Ok((Data::Scalar(ScalarValue::I64(data(0).as_i64()?)), None)),
        "as.double" => Ok((Data::Scalar(ScalarValue::F64(data(0).as_f64()?)), None)),
        "as.logical" => Ok((Data::Scalar(ScalarValue::Bool(data(0).as_bool()?)), None)),
        "toString" => {
            let s = match data(0) {
                Data::Scalar(s) => s.to_display_string(),
                Data::Matrix(h) => format!("{}", h.acquire()?),
                Data::Frame(f) => format!("frame({}x{})", f.rows(), f.cols()),
                Data::Federated(f) => format!("federated({}x{})", f.rows(), f.cols()),
                Data::Empty => "empty".into(),
            };
            Ok((Data::Scalar(ScalarValue::Str(s)), None))
        }
        "print" => {
            let s = match data(0) {
                Data::Scalar(s) => s.to_display_string(),
                Data::Matrix(h) => format!("{}", h.acquire()?),
                other => format!("<{}>", other.kind()),
            };
            ctx.print(s);
            Ok((Data::Empty, Some(LineageItem::leaf("print"))))
        }
        "stop" => {
            let msg = data(0).as_scalar()?.to_display_string();
            Err(SysDsError::Stop(msg))
        }
        "read" => {
            let path = data(0).as_scalar()?.to_display_string();
            let format = data(1).as_scalar()?.to_display_string();
            let data_type = data(2).as_scalar()?.to_display_string();
            let header = data(3).as_bool()?;
            let lin = trace_enabled(ctx).then(|| LineageItem::leaf(format!("read:{path}")));
            let mut desc = sysds_io::FormatDescriptor::csv().with_header(header);
            if format == "tsv" {
                desc = sysds_io::FormatDescriptor::tsv().with_header(header);
            }
            match (data_type.as_str(), format.as_str()) {
                ("frame", _) => {
                    let f = sysds_io::csv::read_frame(&path, &desc)?.detect_schema();
                    Ok((Data::Frame(Arc::new(f)), lin))
                }
                (_, "binary") => Ok((ctx.wrap_matrix(sysds_io::binary::read_matrix(&path)?)?, lin)),
                (_, "mm" | "matrixmarket") => Ok((
                    ctx.wrap_matrix(sysds_io::formats::read_matrix_market(&path)?)?,
                    lin,
                )),
                _ => {
                    let m = sysds_io::csv::read_matrix(&path, &desc, ctx.config.num_threads)?;
                    Ok((ctx.wrap_matrix(m)?, lin))
                }
            }
        }
        "write" => {
            let path = data(1).as_scalar()?.to_display_string();
            let format = data(2).as_scalar()?.to_display_string();
            match (data(0), format.as_str()) {
                (Data::Frame(f), _) => sysds_io::csv::write_frame(
                    &path,
                    f,
                    &sysds_io::FormatDescriptor::csv().with_header(true),
                )?,
                (d, "binary") => {
                    sysds_io::binary::write_matrix(&path, &*d.as_matrix()?, ctx.config.block_size)?
                }
                (d, _) => {
                    let m = d.as_matrix()?;
                    sysds_io::csv::write_matrix(&path, &m, &sysds_io::FormatDescriptor::csv())?;
                    sysds_io::Metadata::matrix(m.rows(), m.cols(), m.nnz(), "csv").save(&path)?;
                }
            }
            Ok((
                Data::Empty,
                Some(LineageItem::leaf(format!("write:{path}"))),
            ))
        }
        other => Err(SysDsError::runtime(format!(
            "unimplemented builtin '{other}'"
        ))),
    }
}

fn dim_of(d: &Data, rows: bool) -> Result<usize> {
    Ok(match d {
        Data::Matrix(h) => {
            let (r, c) = h
                .shape()
                .ok_or_else(|| SysDsError::runtime("shapeless matrix"))?;
            if rows {
                r
            } else {
                c
            }
        }
        Data::Frame(f) => {
            if rows {
                f.rows()
            } else {
                f.cols()
            }
        }
        Data::Federated(f) => {
            if rows {
                f.rows()
            } else {
                f.cols()
            }
        }
        Data::Scalar(_) => 1,
        Data::Empty => return Err(SysDsError::runtime("nrow/ncol of empty value")),
    })
}

fn dist_matmul(a: &Matrix, b: &Matrix, ctx: &ExecCtx) -> Result<Matrix> {
    let da = BlockedMatrix::from_matrix(a, ctx.config.block_size, ctx.config.num_threads)?;
    let db = BlockedMatrix::from_matrix(b, ctx.config.block_size, ctx.config.num_threads)?;
    Ok(da.matmul(&db, 1)?.to_matrix())
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use crate::compiler::hop::SizeInfo;

    fn ctx() -> ExecCtx {
        let mut config = EngineConfig::default();
        config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-instr-tests");
        ExecCtx::new(config).unwrap()
    }

    fn instr(op: HopOp, inputs: Vec<usize>, out: usize) -> Instr {
        Instr {
            op,
            inputs,
            out,
            exec: ExecType::Cp,
            size: SizeInfo::unknown(),
        }
    }

    fn run(instrs: Vec<Instr>, ctx: &ExecCtx) -> Vec<Option<Slot>> {
        let mut slots: Vec<Option<Slot>> = vec![None; instrs.len()];
        let symbols = SymbolTable::new();
        for i in &instrs {
            execute(i, &mut slots, &symbols, ctx).unwrap();
        }
        slots
    }

    #[test]
    fn literal_and_arithmetic() {
        let c = ctx();
        let slots = run(
            vec![
                instr(HopOp::Lit(ScalarValue::I64(2)), vec![], 0),
                instr(HopOp::Lit(ScalarValue::I64(3)), vec![], 1),
                instr(HopOp::Binary(BinaryOp::Add), vec![0, 1], 2),
            ],
            &c,
        );
        assert_eq!(slots[2].as_ref().unwrap().data.as_i64().unwrap(), 5);
    }

    #[test]
    fn integer_arithmetic_stays_integer() {
        let c = ctx();
        let slots = run(
            vec![
                instr(HopOp::Lit(ScalarValue::I64(7)), vec![], 0),
                instr(HopOp::Lit(ScalarValue::I64(2)), vec![], 1),
                instr(HopOp::Binary(BinaryOp::Mul), vec![0, 1], 2),
                instr(HopOp::Binary(BinaryOp::Div), vec![0, 1], 3),
            ],
            &c,
        );
        assert!(matches!(
            slots[2].as_ref().unwrap().data,
            Data::Scalar(ScalarValue::I64(14))
        ));
        // division yields a double
        assert!(matches!(
            slots[3].as_ref().unwrap().data,
            Data::Scalar(ScalarValue::F64(v)) if v == 3.5
        ));
    }

    #[test]
    fn string_concat_via_plus() {
        let c = ctx();
        let slots = run(
            vec![
                instr(HopOp::Lit(ScalarValue::Str("n=".into())), vec![], 0),
                instr(HopOp::Lit(ScalarValue::I64(4)), vec![], 1),
                instr(HopOp::Binary(BinaryOp::Add), vec![0, 1], 2),
            ],
            &c,
        );
        assert_eq!(
            slots[2]
                .as_ref()
                .unwrap()
                .data
                .as_scalar()
                .unwrap()
                .to_display_string(),
            "n=4"
        );
    }

    #[test]
    fn rand_and_tsmm_with_cache() {
        let mut config = EngineConfig::with_reuse();
        config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-instr-tests");
        let c = ExecCtx::new(config).unwrap();
        let mk = |out_base: usize| {
            vec![
                instr(HopOp::Lit(ScalarValue::I64(200)), vec![], out_base),
                instr(HopOp::Lit(ScalarValue::I64(60)), vec![], out_base + 1),
                instr(HopOp::Lit(ScalarValue::F64(0.0)), vec![], out_base + 2),
                instr(HopOp::Lit(ScalarValue::F64(1.0)), vec![], out_base + 3),
                instr(HopOp::Lit(ScalarValue::F64(1.0)), vec![], out_base + 4),
                instr(HopOp::Lit(ScalarValue::I64(42)), vec![], out_base + 5),
                instr(
                    HopOp::Lit(ScalarValue::Str("uniform".into())),
                    vec![],
                    out_base + 6,
                ),
                instr(
                    HopOp::Nary("rand"),
                    (out_base..out_base + 7).collect(),
                    out_base + 7,
                ),
                instr(HopOp::Tsmm, vec![out_base + 7], out_base + 8),
            ]
        };
        // First run computes, second reuses (same seed → same lineage).
        let mut slots: Vec<Option<Slot>> = vec![None; 18];
        let symbols = SymbolTable::new();
        for i in mk(0) {
            execute(&i, &mut slots, &symbols, &c).unwrap();
        }
        for i in mk(9) {
            execute(&i, &mut slots, &symbols, &c).unwrap();
        }
        let a = slots[8].as_ref().unwrap().data.as_matrix().unwrap();
        let b = slots[17].as_ref().unwrap().data.as_matrix().unwrap();
        assert!(a.approx_eq(&b, 0.0));
        assert!(c.cache.stats().hits >= 1, "stats: {:?}", c.cache.stats());
    }

    #[test]
    fn indexing_is_one_based_inclusive() {
        let c = ctx();
        let mut slots: Vec<Option<Slot>> = vec![None; 6];
        let symbols = {
            let mut st = SymbolTable::new();
            st.set(
                "X",
                Data::from_matrix(Matrix::from_rows(&[&[1., 2., 3.], &[4., 5., 6.]]).unwrap()),
                None,
            );
            st
        };
        let instrs = vec![
            instr(HopOp::Var("X".into()), vec![], 0),
            instr(HopOp::Lit(ScalarValue::I64(1)), vec![], 1),
            instr(HopOp::Lit(ScalarValue::I64(2)), vec![], 2),
            instr(HopOp::Lit(ScalarValue::I64(2)), vec![], 3),
            instr(HopOp::Lit(ScalarValue::I64(3)), vec![], 4),
            instr(HopOp::Index, vec![0, 1, 2, 3, 4], 5),
        ];
        for i in &instrs {
            execute(i, &mut slots, &symbols, &c).unwrap();
        }
        let m = slots[5].as_ref().unwrap().data.as_matrix().unwrap();
        assert_eq!(m.shape(), (2, 2));
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 1), 6.0);
    }

    #[test]
    fn out_of_bounds_index_reports_error() {
        let c = ctx();
        let mut slots: Vec<Option<Slot>> = vec![None; 6];
        let mut st = SymbolTable::new();
        st.set("X", Data::from_matrix(Matrix::zeros(2, 2)), None);
        let instrs = vec![
            instr(HopOp::Var("X".into()), vec![], 0),
            instr(HopOp::Lit(ScalarValue::I64(1)), vec![], 1),
            instr(HopOp::Lit(ScalarValue::I64(5)), vec![], 2),
            instr(HopOp::Lit(ScalarValue::I64(1)), vec![], 3),
            instr(HopOp::Lit(ScalarValue::I64(1)), vec![], 4),
        ];
        for i in &instrs {
            execute(i, &mut slots, &st, &c).unwrap();
        }
        let bad = instr(HopOp::Index, vec![0, 1, 2, 3, 4], 5);
        assert!(execute(&bad, &mut slots, &st, &c).is_err());
    }

    #[test]
    fn print_captured() {
        let c = ctx();
        run(
            vec![
                instr(HopOp::Lit(ScalarValue::Str("hello".into())), vec![], 0),
                instr(HopOp::Nary("print"), vec![0], 1),
            ],
            &c,
        );
        assert_eq!(c.take_stdout(), vec!["hello".to_string()]);
    }

    #[test]
    fn stop_raises() {
        let c = ctx();
        let mut slots: Vec<Option<Slot>> = vec![None; 2];
        let st = SymbolTable::new();
        execute(
            &instr(HopOp::Lit(ScalarValue::Str("bad".into())), vec![], 0),
            &mut slots,
            &st,
            &c,
        )
        .unwrap();
        let e = execute(&instr(HopOp::Nary("stop"), vec![0], 1), &mut slots, &st, &c).unwrap_err();
        assert!(matches!(e, SysDsError::Stop(_)));
    }

    #[test]
    fn unseeded_rand_differs_across_calls() {
        let c = ctx();
        let mk = |base: usize| {
            vec![
                instr(HopOp::Lit(ScalarValue::I64(4)), vec![], base),
                instr(HopOp::Lit(ScalarValue::I64(4)), vec![], base + 1),
                instr(HopOp::Lit(ScalarValue::F64(0.0)), vec![], base + 2),
                instr(HopOp::Lit(ScalarValue::F64(1.0)), vec![], base + 3),
                instr(HopOp::Lit(ScalarValue::F64(1.0)), vec![], base + 4),
                instr(HopOp::Lit(ScalarValue::I64(-1)), vec![], base + 5),
                instr(
                    HopOp::Lit(ScalarValue::Str("uniform".into())),
                    vec![],
                    base + 6,
                ),
                instr(HopOp::Nary("rand"), (base..base + 7).collect(), base + 7),
            ]
        };
        let mut slots: Vec<Option<Slot>> = vec![None; 16];
        let st = SymbolTable::new();
        for i in mk(0).into_iter().chain(mk(8)) {
            execute(&i, &mut slots, &st, &c).unwrap();
        }
        let a = slots[7].as_ref().unwrap().data.as_matrix().unwrap();
        let b = slots[15].as_ref().unwrap().data.as_matrix().unwrap();
        assert!(!a.approx_eq(&b, 0.0), "unseeded rand must differ");
    }
}
