//! Local parameter server for mini-batch training (paper §2.3 (4)).
//!
//! "Additionally, we support dedicated backends for ... parameter servers
//! (e.g., for mini-batch DNN training)." Workers hold row shards and
//! compute mini-batch gradients against broadcast weights; the server
//! aggregates updates either synchronously (BSP: barrier per epoch) or
//! asynchronously (ASP: apply updates as they arrive).

use crossbeam::channel::unbounded;
use parking_lot::RwLock;
use std::sync::Arc;
use sysds_common::{Result, SysDsError};
use sysds_tensor::kernels::BinaryOp;
use sysds_tensor::kernels::{elementwise, indexing, matmult, tsmm};
use sysds_tensor::Matrix;

/// Update mode of the parameter server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateMode {
    /// Bulk-synchronous: all workers' gradients are averaged per epoch.
    Bsp,
    /// Asynchronous: each gradient is applied immediately on arrival.
    Asp,
}

/// Configuration for a training run.
#[derive(Debug, Clone)]
pub struct PsConfig {
    pub workers: usize,
    pub epochs: usize,
    pub batch_size: usize,
    pub learning_rate: f64,
    pub mode: UpdateMode,
}

impl Default for PsConfig {
    fn default() -> Self {
        PsConfig {
            workers: 2,
            epochs: 10,
            batch_size: 32,
            learning_rate: 0.1,
            mode: UpdateMode::Bsp,
        }
    }
}

/// The objective's gradient on one mini-batch: linear regression squared
/// loss, `t(X_b) (X_b w - y_b) / |b|`.
fn linreg_gradient(xb: &Matrix, yb: &Matrix, w: &Matrix) -> Result<Matrix> {
    let pred = matmult::matmul(xb, w, 1, false)?;
    let resid = elementwise::binary_mm(BinaryOp::Sub, &pred, yb)?;
    let g = tsmm::tmv(xb, &resid, 1)?;
    Ok(elementwise::binary_ms(BinaryOp::Div, &g, xb.rows() as f64))
}

/// Train a linear model with a local parameter server. Returns the weights.
pub fn train_linreg(x: &Matrix, y: &Matrix, config: &PsConfig) -> Result<Matrix> {
    if x.rows() != y.rows() || y.cols() != 1 {
        return Err(SysDsError::DimensionMismatch {
            op: "paramserv",
            lhs: x.shape(),
            rhs: y.shape(),
        });
    }
    if x.rows() == 0 {
        return Err(SysDsError::runtime("paramserv: empty training data"));
    }
    let workers = config.workers.max(1).min(x.rows());
    // Shard rows contiguously across workers.
    let per = x.rows().div_ceil(workers);
    let mut shards = Vec::with_capacity(workers);
    for w in 0..workers {
        let lo = w * per;
        if lo >= x.rows() {
            break;
        }
        let hi = ((w + 1) * per).min(x.rows());
        shards.push((
            indexing::slice(x, lo..hi, 0..x.cols())?,
            indexing::slice(y, lo..hi, 0..1)?,
        ));
    }

    let weights = Arc::new(RwLock::new(Matrix::zeros(x.cols(), 1)));
    match config.mode {
        UpdateMode::Bsp => train_bsp(&shards, &weights, config)?,
        UpdateMode::Asp => train_asp(&shards, &weights, config)?,
    }
    let w = weights.read().clone();
    Ok(w)
}

fn train_bsp(
    shards: &[(Matrix, Matrix)],
    weights: &Arc<RwLock<Matrix>>,
    config: &PsConfig,
) -> Result<()> {
    for epoch in 0..config.epochs {
        let w_snapshot = weights.read().clone();
        // All workers compute gradients against the same snapshot (barrier).
        let grads: Vec<Result<Vec<Matrix>>> = crossbeam::thread::scope(|s| {
            shards
                .iter()
                .map(|(xs, ys)| {
                    let w = w_snapshot.clone();
                    s.spawn(move |_| -> Result<Vec<Matrix>> {
                        let mut out = Vec::new();
                        for (xb, yb) in batches(xs, ys, config.batch_size, epoch as u64) {
                            out.push(linreg_gradient(&xb, &yb, &w)?);
                        }
                        Ok(out)
                    })
                })
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("ps worker panicked"))
                .collect()
        })
        .expect("ps scope failed");
        // Server: average all batch gradients, one step.
        let mut acc: Option<Matrix> = None;
        let mut count = 0usize;
        for g in grads {
            for gm in g? {
                acc = Some(match acc {
                    None => gm,
                    Some(a) => elementwise::binary_mm(BinaryOp::Add, &a, &gm)?,
                });
                count += 1;
            }
        }
        if let Some(total) = acc {
            let avg = elementwise::binary_ms(BinaryOp::Div, &total, count as f64);
            let step = elementwise::binary_ms(BinaryOp::Mul, &avg, config.learning_rate);
            let mut w = weights.write();
            *w = elementwise::binary_mm(BinaryOp::Sub, &w, &step)?;
        }
    }
    Ok(())
}

fn train_asp(
    shards: &[(Matrix, Matrix)],
    weights: &Arc<RwLock<Matrix>>,
    config: &PsConfig,
) -> Result<()> {
    let (tx, rx) = unbounded::<Matrix>();
    let expected: usize = shards
        .iter()
        .map(|(xs, _)| config.epochs * xs.rows().div_ceil(config.batch_size.max(1)))
        .sum();
    crossbeam::thread::scope(|s| -> Result<()> {
        for (xs, ys) in shards {
            let tx = tx.clone();
            let weights = Arc::clone(weights);
            s.spawn(move |_| -> Result<()> {
                for epoch in 0..config.epochs {
                    for (xb, yb) in batches(xs, ys, config.batch_size, epoch as u64) {
                        // Read possibly-stale weights without a barrier.
                        let w = weights.read().clone();
                        let g = linreg_gradient(&xb, &yb, &w)?;
                        let _ = tx.send(g);
                    }
                }
                Ok(())
            });
        }
        drop(tx);
        // Server applies each gradient as it arrives.
        let mut applied = 0usize;
        while let Ok(g) = rx.recv() {
            let step = elementwise::binary_ms(BinaryOp::Mul, &g, config.learning_rate);
            let mut w = weights.write();
            *w = elementwise::binary_mm(BinaryOp::Sub, &w, &step)?;
            applied += 1;
        }
        debug_assert!(applied <= expected);
        Ok(())
    })
    .expect("asp scope failed")
}

/// Contiguous mini-batches with an epoch-dependent rotation so epochs see
/// batches in different order (deterministic; the offset is traceable).
fn batches<'a>(
    x: &'a Matrix,
    y: &'a Matrix,
    batch_size: usize,
    epoch: u64,
) -> impl Iterator<Item = (Matrix, Matrix)> + 'a {
    let n = x.rows();
    let bs = batch_size.max(1).min(n.max(1));
    let nb = n.div_ceil(bs);
    let rot = if nb > 0 { (epoch as usize) % nb } else { 0 };
    (0..nb).map(move |k| {
        let b = (k + rot) % nb;
        let lo = b * bs;
        let hi = (lo + bs).min(n);
        (
            indexing::slice(x, lo..hi, 0..x.cols()).expect("batch in range"),
            indexing::slice(y, lo..hi, 0..y.cols()).expect("batch in range"),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysds_tensor::kernels::{gen, solve};

    fn exact(x: &Matrix, y: &Matrix) -> Matrix {
        let g = tsmm::tsmm(x, 1, false);
        let b = tsmm::tmv(x, y, 1).unwrap();
        solve::solve(&g, &b).unwrap()
    }

    #[test]
    fn bsp_converges_to_exact_solution() {
        let (x, y) = gen::synthetic_regression(300, 4, 1.0, 0.0, 401);
        let config = PsConfig {
            workers: 3,
            epochs: 300,
            batch_size: 50,
            learning_rate: 0.5,
            mode: UpdateMode::Bsp,
        };
        let w = train_linreg(&x, &y, &config).unwrap();
        assert!(w.approx_eq(&exact(&x, &y), 5e-2), "{:?}", w.to_vec());
    }

    #[test]
    fn asp_also_converges() {
        let (x, y) = gen::synthetic_regression(300, 3, 1.0, 0.0, 402);
        let config = PsConfig {
            workers: 4,
            epochs: 400,
            batch_size: 30,
            learning_rate: 0.02,
            mode: UpdateMode::Asp,
        };
        let w = train_linreg(&x, &y, &config).unwrap();
        let ex = exact(&x, &y);
        // ASP is noisier; accept a looser tolerance.
        assert!(
            w.approx_eq(&ex, 0.15),
            "asp {:?} vs exact {:?}",
            w.to_vec(),
            ex.to_vec()
        );
    }

    #[test]
    fn bsp_is_deterministic() {
        let (x, y) = gen::synthetic_regression(100, 3, 1.0, 0.1, 403);
        let config = PsConfig {
            epochs: 20,
            ..PsConfig::default()
        };
        let a = train_linreg(&x, &y, &config).unwrap();
        let b = train_linreg(&x, &y, &config).unwrap();
        assert!(a.approx_eq(&b, 0.0));
    }

    #[test]
    fn input_validation() {
        let x = Matrix::zeros(5, 2);
        assert!(train_linreg(&x, &Matrix::zeros(4, 1), &PsConfig::default()).is_err());
        assert!(train_linreg(&x, &Matrix::zeros(5, 2), &PsConfig::default()).is_err());
        assert!(train_linreg(
            &Matrix::zeros(0, 2),
            &Matrix::zeros(0, 1),
            &PsConfig::default()
        )
        .is_err());
    }

    #[test]
    fn single_worker_degenerates_to_sgd() {
        let (x, y) = gen::synthetic_regression(80, 2, 1.0, 0.0, 404);
        let config = PsConfig {
            workers: 1,
            epochs: 200,
            batch_size: 16,
            learning_rate: 0.5,
            mode: UpdateMode::Bsp,
        };
        let w = train_linreg(&x, &y, &config).unwrap();
        assert!(w.approx_eq(&exact(&x, &y), 5e-2));
    }

    #[test]
    fn more_workers_than_rows_is_safe() {
        let (x, y) = gen::synthetic_regression(3, 2, 1.0, 0.0, 405);
        let config = PsConfig {
            workers: 16,
            epochs: 5,
            ..PsConfig::default()
        };
        assert!(train_linreg(&x, &y, &config).is_ok());
    }
}
