//! The multi-level buffer pool (paper §2.3 (3)).
//!
//! The control program "maintains a multi-level buffer pool that is
//! responsible for evicting intermediate variables if necessary" — here a
//! [`BufferPool`] tracks registered [`MatrixHandle`]s, accounts in-memory
//! bytes, and evicts cold matrices to spill files (binary block format)
//! when the configured limit is exceeded. Access through
//! [`MatrixHandle::acquire`] transparently restores evicted data.

use parking_lot::Mutex;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};
use sysds_common::{Result, SysDsError};
use sysds_tensor::Matrix;

static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static CLOCK: AtomicU64 = AtomicU64::new(1);

#[derive(Debug)]
struct HandleState {
    /// Handle id — also names the spill file, so it must live in the
    /// state: evictions run through weak pool entries that have no
    /// access to the owning `MatrixHandle`.
    id: u64,
    /// In-memory copy, if cached.
    mem: Option<Arc<Matrix>>,
    /// Spill file, if evicted (kept until drop for cheap re-eviction).
    disk: Option<PathBuf>,
    /// Logical shape (known even when evicted).
    shape: (usize, usize),
    sparsity: f64,
    bytes: usize,
    last_access: u64,
}

/// A shared, evictable matrix handle (SystemML's `MatrixObject`).
#[derive(Debug, Clone)]
pub struct MatrixHandle {
    id: u64,
    state: Arc<Mutex<HandleState>>,
}

impl MatrixHandle {
    /// A handle outside any pool (never evicted).
    pub fn unmanaged(m: Matrix) -> MatrixHandle {
        let bytes = m.in_memory_size();
        let shape = m.shape();
        let sparsity = m.sparsity();
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        MatrixHandle {
            id,
            state: Arc::new(Mutex::new(HandleState {
                id,
                mem: Some(Arc::new(m)),
                disk: None,
                shape,
                sparsity,
                bytes,
                last_access: CLOCK.fetch_add(1, Ordering::Relaxed),
            })),
        }
    }

    /// Unique id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Logical shape (available even when evicted).
    pub fn shape(&self) -> Option<(usize, usize)> {
        Some(self.state.lock().shape)
    }

    /// Sparsity estimate recorded at registration.
    pub fn sparsity(&self) -> Option<f64> {
        Some(self.state.lock().sparsity)
    }

    /// Whether the matrix currently resides in memory.
    pub fn is_cached(&self) -> bool {
        self.state.lock().mem.is_some()
    }

    /// In-memory byte estimate.
    pub fn bytes(&self) -> usize {
        self.state.lock().bytes
    }

    /// Acquire the matrix, restoring from the spill file if evicted.
    pub fn acquire(&self) -> Result<Arc<Matrix>> {
        let mut st = self.state.lock();
        st.last_access = CLOCK.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = &st.mem {
            return Ok(m.clone());
        }
        let path = st
            .disk
            .clone()
            .ok_or_else(|| SysDsError::runtime("matrix handle has neither memory nor disk copy"))?;
        let _span = sysds_obs::Span::enter(sysds_obs::Phase::BufferPool, "restore");
        let bytes =
            std::fs::read(&path).map_err(|e| SysDsError::io(path.display().to_string(), e))?;
        let m = Arc::new(sysds_io::binary::decode_matrix(&bytes)?);
        if sysds_obs::stats_enabled() {
            let c = sysds_obs::counters();
            c.buf_restores.fetch_add(1, Ordering::Relaxed);
            c.buf_restored_bytes
                .fetch_add(bytes.len() as u64, Ordering::Relaxed);
        }
        st.mem = Some(m.clone());
        Ok(m)
    }

    fn evict(&self, dir: &std::path::Path) -> Result<usize> {
        let mut st = self.state.lock();
        if st.mem.is_none() {
            return Ok(0);
        }
        let _span = sysds_obs::Span::enter(sysds_obs::Phase::BufferPool, "evict");
        if st.disk.is_none() {
            let path = dir.join(format!("spill-{}.bin", st.id));
            let m = st.mem.as_ref().unwrap();
            let encoded = sysds_io::binary::encode_matrix(m);
            std::fs::write(&path, &encoded)
                .map_err(|e| SysDsError::io(path.display().to_string(), e))?;
            if sysds_obs::stats_enabled() {
                sysds_obs::counters()
                    .buf_spilled_bytes
                    .fetch_add(encoded.len() as u64, Ordering::Relaxed);
            }
            st.disk = Some(path);
        }
        if sysds_obs::stats_enabled() {
            sysds_obs::counters()
                .buf_evictions
                .fetch_add(1, Ordering::Relaxed);
        }
        st.mem = None;
        Ok(st.bytes)
    }
}

impl Drop for HandleState {
    fn drop(&mut self) {
        if let Some(path) = &self.disk {
            let _ = std::fs::remove_file(path);
        }
    }
}

/// The buffer pool: registered handles + capacity accounting.
#[derive(Debug)]
pub struct BufferPool {
    limit: usize,
    spill_dir: PathBuf,
    entries: Mutex<Vec<Weak<Mutex<HandleState>>>>,
}

impl BufferPool {
    /// Create a pool with the given in-memory byte limit.
    pub fn new(limit: usize, spill_dir: PathBuf) -> Result<BufferPool> {
        std::fs::create_dir_all(&spill_dir)
            .map_err(|e| SysDsError::io(spill_dir.display().to_string(), e))?;
        Ok(BufferPool {
            limit,
            spill_dir,
            entries: Mutex::new(Vec::new()),
        })
    }

    /// Register a new matrix, then enforce the capacity limit.
    pub fn register(&self, m: Matrix) -> Result<MatrixHandle> {
        let handle = MatrixHandle::unmanaged(m);
        self.entries.lock().push(Arc::downgrade(&handle.state));
        self.enforce_limit(Some(handle.id))?;
        Ok(handle)
    }

    /// Total bytes of live, in-memory registered matrices.
    pub fn cached_bytes(&self) -> usize {
        self.entries
            .lock()
            .iter()
            .filter_map(Weak::upgrade)
            .filter_map(|s| {
                let st = s.lock();
                st.mem.as_ref().map(|_| st.bytes)
            })
            .sum()
    }

    /// Number of live registered handles.
    pub fn live_handles(&self) -> usize {
        self.entries
            .lock()
            .iter()
            .filter(|w| w.strong_count() > 0)
            .count()
    }

    /// Evict least-recently-used handles until under the limit. The handle
    /// `protect` (typically the one just registered) is evicted last.
    fn enforce_limit(&self, protect: Option<u64>) -> Result<()> {
        let mut entries = self.entries.lock();
        entries.retain(|w| w.strong_count() > 0);
        let mut live: Vec<Arc<Mutex<HandleState>>> =
            entries.iter().filter_map(Weak::upgrade).collect();
        drop(entries);
        let mut total: usize = live
            .iter()
            .map(|s| {
                let st = s.lock();
                if st.mem.is_some() {
                    st.bytes
                } else {
                    0
                }
            })
            .sum();
        if total <= self.limit {
            return Ok(());
        }
        // Sort by last access (oldest first).
        live.sort_by_key(|s| s.lock().last_access);
        let _ = protect;
        for state in live {
            if total <= self.limit {
                break;
            }
            let handle = MatrixHandle {
                id: 0,
                state: state.clone(),
            };
            total = total.saturating_sub(handle.evict(&self.spill_dir)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysds_tensor::kernels::gen;

    fn dir(name: &str) -> PathBuf {
        sysds_common::testing::unique_temp_dir(&format!("sysds-pool-tests-{name}"))
    }

    #[test]
    fn unmanaged_acquire() {
        let m = gen::rand_uniform(5, 5, 0.0, 1.0, 1.0, 201);
        let h = MatrixHandle::unmanaged(m.clone());
        assert!(h.is_cached());
        assert!(h.acquire().unwrap().approx_eq(&m, 0.0));
        assert_eq!(h.shape(), Some((5, 5)));
    }

    #[test]
    fn eviction_and_restore_round_trip() {
        let pool = BufferPool::new(10_000, dir("evict")).unwrap();
        let m1 = gen::rand_uniform(30, 30, 0.0, 1.0, 1.0, 202); // ~7.2 KB
        let m2 = gen::rand_uniform(30, 30, 0.0, 1.0, 1.0, 203);
        let h1 = pool.register(m1.clone()).unwrap();
        let h2 = pool.register(m2.clone()).unwrap();
        // Pool limit fits only one: h1 (older) must have been evicted.
        assert!(!h1.is_cached(), "older handle should be evicted");
        assert!(h2.is_cached());
        // Restore transparently and verify content.
        assert!(h1.acquire().unwrap().approx_eq(&m1, 0.0));
        assert!(h1.is_cached());
    }

    #[test]
    fn lru_order_respected() {
        let pool = BufferPool::new(16_000, dir("lru")).unwrap();
        let h1 = pool
            .register(gen::rand_uniform(30, 30, 0.0, 1.0, 1.0, 204))
            .unwrap();
        let h2 = pool
            .register(gen::rand_uniform(30, 30, 0.0, 1.0, 1.0, 205))
            .unwrap();
        // Touch h1 so h2 becomes the LRU.
        h1.acquire().unwrap();
        let _h3 = pool
            .register(gen::rand_uniform(30, 30, 0.0, 1.0, 1.0, 206))
            .unwrap();
        assert!(h1.is_cached());
        assert!(!h2.is_cached());
    }

    #[test]
    fn cached_bytes_accounting() {
        let pool = BufferPool::new(1 << 20, dir("bytes")).unwrap();
        assert_eq!(pool.cached_bytes(), 0);
        let h = pool
            .register(gen::rand_uniform(10, 10, 0.0, 1.0, 1.0, 207))
            .unwrap();
        assert_eq!(pool.cached_bytes(), h.bytes());
        drop(h);
        // dropped handles no longer count
        let _ = pool
            .register(gen::rand_uniform(2, 2, 0.0, 1.0, 1.0, 208))
            .unwrap();
        assert!(pool.cached_bytes() < 1000);
    }

    #[test]
    fn spill_files_cleaned_on_drop() {
        let d = dir("cleanup");
        let pool = BufferPool::new(100, d.clone()).unwrap();
        let h = pool
            .register(gen::rand_uniform(20, 20, 0.0, 1.0, 1.0, 209))
            .unwrap();
        assert!(!h.is_cached()); // limit 100 bytes → immediate eviction
        let files = std::fs::read_dir(&d).unwrap().count();
        assert_eq!(files, 1);
        drop(h);
        let files = std::fs::read_dir(&d).unwrap().count();
        assert_eq!(files, 0, "spill file removed with last handle");
    }

    #[test]
    fn eviction_and_restore_update_obs_counters() {
        sysds_obs::enable_stats();
        let before = sysds_obs::counters().snapshot();
        let pool = BufferPool::new(1, dir("obs-counters")).unwrap();
        let m = gen::rand_uniform(40, 40, -1.0, 1.0, 1.0, 211);
        let h = pool.register(m.clone()).unwrap();
        assert!(!h.is_cached(), "limit of 1 byte forces eviction");
        let back = h.acquire().unwrap();
        assert!(
            back.approx_eq(&m, 0.0),
            "restore must be bit-identical to the spilled data"
        );
        // Deltas are `>=` because the counters are global and other tests
        // in this process may evict concurrently.
        let after = sysds_obs::counters().snapshot();
        assert!(after.buf_evictions >= before.buf_evictions + 1);
        assert!(after.buf_restores >= before.buf_restores + 1);
        // 40x40 dense f64 payload: well over 10 KB on disk, both ways.
        assert!(after.buf_spilled_bytes >= before.buf_spilled_bytes + 10_000);
        assert!(after.buf_restored_bytes >= before.buf_restored_bytes + 10_000);
    }

    #[test]
    fn sparse_matrices_survive_eviction() {
        let pool = BufferPool::new(1, dir("sparse")).unwrap();
        let m = gen::rand_uniform(50, 50, -1.0, 1.0, 0.05, 210).compact();
        assert!(m.is_sparse());
        let h = pool.register(m.clone()).unwrap();
        assert!(!h.is_cached());
        let back = h.acquire().unwrap();
        assert!(back.approx_eq(&m, 0.0));
        assert!(back.is_sparse());
    }
}
