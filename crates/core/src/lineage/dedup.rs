//! Loop deduplication of lineage traces (paper §3.1).
//!
//! "For loops with few distinct control flow paths, we determine the
//! lineage trace per path once, and track the taken path via a single
//! lineage node for deduplication."
//!
//! A [`DedupRegistry`] stores, per `(loop id, path id)`, the *template* of
//! the per-iteration lineage — a mini-DAG whose leaves are placeholders
//! for the iteration's entry lineages. Subsequent iterations on the same
//! path record only a single `dedup` node referencing the entry lineages;
//! [`DedupRegistry::expand`] reconstructs the full trace on demand (for
//! debugging queries or cache key derivation).

use super::item::LineageItem;
use parking_lot::Mutex;
use std::sync::Arc;
use sysds_common::hash::FxHashMap;

/// Placeholder opcode prefix used inside templates.
const PLACEHOLDER: &str = "ph:";

/// Registry of per-path lineage templates.
#[derive(Debug, Default)]
pub struct DedupRegistry {
    templates: Mutex<FxHashMap<(u64, u64), Arc<LineageItem>>>,
}

impl DedupRegistry {
    /// Empty registry.
    pub fn new() -> DedupRegistry {
        DedupRegistry::default()
    }

    /// Number of stored templates.
    pub fn len(&self) -> usize {
        self.templates.lock().len()
    }

    /// Whether no templates are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Build a template from a concrete per-iteration lineage by replacing
    /// the `entries` (the live-in lineages at iteration start) with
    /// placeholders. Registers it under `(loop_id, path_id)` on first call.
    pub fn register(
        &self,
        loop_id: u64,
        path_id: u64,
        concrete: &Arc<LineageItem>,
        entries: &[Arc<LineageItem>],
    ) {
        let mut templates = self.templates.lock();
        templates
            .entry((loop_id, path_id))
            .or_insert_with(|| templatize(concrete, entries));
    }

    /// Whether a template exists for the path.
    pub fn has(&self, loop_id: u64, path_id: u64) -> bool {
        self.templates.lock().contains_key(&(loop_id, path_id))
    }

    /// Create the deduplicated single-node lineage for one iteration:
    /// `dedup:<loop>:<path>(entry lineages...)`.
    pub fn dedup_node(
        &self,
        loop_id: u64,
        path_id: u64,
        entries: Vec<Arc<LineageItem>>,
    ) -> Arc<LineageItem> {
        LineageItem::node(format!("dedup:{loop_id}:{path_id}"), entries)
    }

    /// Expand a `dedup` node back into the full per-iteration lineage by
    /// substituting its inputs into the stored template. Returns `None`
    /// for non-dedup nodes or unknown paths.
    pub fn expand(&self, node: &Arc<LineageItem>) -> Option<Arc<LineageItem>> {
        let rest = node.opcode.strip_prefix("dedup:")?;
        let (l, p) = rest.split_once(':')?;
        let key = (l.parse().ok()?, p.parse().ok()?);
        let template = self.templates.lock().get(&key)?.clone();
        Some(substitute(&template, &node.inputs))
    }
}

/// Replace each occurrence of an entry lineage with `ph:<index>`.
fn templatize(item: &Arc<LineageItem>, entries: &[Arc<LineageItem>]) -> Arc<LineageItem> {
    if let Some(idx) = entries
        .iter()
        .position(|e| Arc::ptr_eq(e, item) || e.hash == item.hash)
    {
        return LineageItem::leaf(format!("{PLACEHOLDER}{idx}"));
    }
    if item.inputs.is_empty() {
        return item.clone();
    }
    let inputs = item.inputs.iter().map(|i| templatize(i, entries)).collect();
    LineageItem::node(item.opcode.clone(), inputs)
}

/// Substitute placeholders with the given entry lineages.
fn substitute(template: &Arc<LineageItem>, entries: &[Arc<LineageItem>]) -> Arc<LineageItem> {
    if let Some(rest) = template.opcode.strip_prefix(PLACEHOLDER) {
        if let Ok(idx) = rest.parse::<usize>() {
            if let Some(e) = entries.get(idx) {
                return e.clone();
            }
        }
    }
    if template.inputs.is_empty() {
        return template.clone();
    }
    let inputs = template
        .inputs
        .iter()
        .map(|i| substitute(i, entries))
        .collect();
    LineageItem::node(template.opcode.clone(), inputs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simulate one loop iteration's lineage: out = exp(X_entry * 2) + X_entry.
    fn iteration_lineage(entry: &Arc<LineageItem>) -> Arc<LineageItem> {
        let two = LineageItem::leaf("lit:2");
        let scaled = LineageItem::node("*", vec![entry.clone(), two]);
        let e = LineageItem::node("exp", vec![scaled]);
        LineageItem::node("+", vec![e, entry.clone()])
    }

    #[test]
    fn register_and_expand_round_trip() {
        let reg = DedupRegistry::new();
        let entry0 = LineageItem::leaf("input:X");
        let concrete = iteration_lineage(&entry0);
        reg.register(1, 0, &concrete, std::slice::from_ref(&entry0));
        assert!(reg.has(1, 0));

        // Second iteration: entry is the previous iteration's output.
        let entry1 = concrete.clone();
        let node = reg.dedup_node(1, 0, vec![entry1.clone()]);
        let expanded = reg.expand(&node).unwrap();
        let expected = iteration_lineage(&entry1);
        assert_eq!(expanded.hash, expected.hash);
    }

    #[test]
    fn dedup_nodes_shrink_trace_size() {
        let reg = DedupRegistry::new();
        let entry = LineageItem::leaf("input:X");
        let mut full = entry.clone();
        let mut deduped = entry.clone();
        // First iteration registers the template.
        let first = iteration_lineage(&full);
        reg.register(7, 0, &first, std::slice::from_ref(&full));
        full = first;
        deduped = reg.dedup_node(7, 0, vec![deduped]);
        // 50 more iterations.
        for _ in 0..50 {
            full = iteration_lineage(&full);
            deduped = reg.dedup_node(7, 0, vec![deduped]);
        }
        assert!(
            deduped.dag_size() * 2 < full.dag_size(),
            "dedup {} vs full {}",
            deduped.dag_size(),
            full.dag_size()
        );
    }

    #[test]
    fn distinct_paths_get_distinct_templates() {
        let reg = DedupRegistry::new();
        let entry = LineageItem::leaf("input:X");
        let path0 = iteration_lineage(&entry);
        let path1 = LineageItem::node("sqrt", vec![entry.clone()]);
        reg.register(3, 0, &path0, std::slice::from_ref(&entry));
        reg.register(3, 1, &path1, std::slice::from_ref(&entry));
        assert_eq!(reg.len(), 2);
        let n0 = reg.dedup_node(3, 0, vec![entry.clone()]);
        let n1 = reg.dedup_node(3, 1, vec![entry.clone()]);
        assert_ne!(n0.hash, n1.hash);
        assert_ne!(reg.expand(&n0).unwrap().hash, reg.expand(&n1).unwrap().hash);
    }

    #[test]
    fn expand_rejects_unknown() {
        let reg = DedupRegistry::new();
        let plain = LineageItem::leaf("input:X");
        assert!(reg.expand(&plain).is_none());
        let unknown = reg.dedup_node(9, 9, vec![plain]);
        assert!(reg.expand(&unknown).is_none());
    }

    #[test]
    fn register_is_idempotent() {
        let reg = DedupRegistry::new();
        let entry = LineageItem::leaf("input:X");
        let lin = iteration_lineage(&entry);
        reg.register(1, 0, &lin, std::slice::from_ref(&entry));
        reg.register(1, 0, &lin, std::slice::from_ref(&entry));
        assert_eq!(reg.len(), 1);
    }

    mod cache_integration {
        //! Dedup + lineage-cache interplay: the point of deduplicated
        //! traces is that equal work across loop iterations still produces
        //! equal cache keys, so the reuse cache hits on iterations 2..n.

        use super::*;
        use crate::lineage::cache::LineageCache;
        use std::sync::Arc;
        use sysds_common::config::ReusePolicy;
        use sysds_tensor::Matrix;

        /// A `for`-style loop: every iteration runs the same path over a
        /// loop-invariant entry. With dedup, each iteration's lineage is
        /// one `dedup` node over the same entries — identical hash — so the
        /// cache records 1 miss and n-1 hits.
        #[test]
        fn loop_invariant_iterations_hit_after_first() {
            let reg = DedupRegistry::new();
            let cache = LineageCache::new(ReusePolicy::Full, 1 << 20);
            let entry = LineageItem::leaf("input:X");
            let value = Arc::new(Matrix::filled(4, 4, 2.5));

            let mut hits = 0u64;
            for i in 0..10 {
                let concrete = iteration_lineage(&entry);
                reg.register(11, 0, &concrete, std::slice::from_ref(&entry));
                let key = reg.dedup_node(11, 0, vec![entry.clone()]);
                if let Some(v) = cache.probe(&key) {
                    hits += 1;
                    assert!(v.approx_eq(&value, 0.0), "iteration {i} got stale data");
                } else {
                    // Pretend the body computed `value` (expensive enough
                    // to be cached: large compute_nanos).
                    cache.put(&key, value.clone(), 1_000_000);
                }
            }
            assert_eq!(hits, 9, "first iteration misses, the rest hit");
            let stats = cache.stats();
            assert_eq!(stats.hits, 9);
            assert_eq!(stats.misses, 1);
        }

        /// A `parfor`-style loop: iterations run the same path over
        /// *different* entries (e.g. column i). Dedup nodes then differ by
        /// construction — no false hits — but re-running the whole parfor
        /// (hyper-parameter loops in the paper) hits on every iteration.
        #[test]
        fn parfor_iterations_keyed_by_entry_no_false_hits() {
            let reg = DedupRegistry::new();
            let cache = LineageCache::new(ReusePolicy::Full, 1 << 20);

            let entries: Vec<Arc<LineageItem>> = (0..6)
                .map(|i| {
                    LineageItem::node(
                        format!("rightIndex:{i}"),
                        vec![LineageItem::leaf("input:X")],
                    )
                })
                .collect();

            // First parfor sweep: all misses, each iteration cached under
            // its own dedup key.
            for (i, e) in entries.iter().enumerate() {
                let concrete = iteration_lineage(e);
                reg.register(12, 0, &concrete, std::slice::from_ref(e));
                let key = reg.dedup_node(12, 0, vec![e.clone()]);
                assert!(
                    cache.probe(&key).is_none(),
                    "iteration {i} falsely hit another iteration's entry"
                );
                cache.put(&key, Arc::new(Matrix::filled(2, 2, i as f64)), 1_000_000);
            }
            let after_first = cache.stats();
            assert_eq!(after_first.hits, 0);
            assert_eq!(after_first.misses, 6);

            // Second sweep over the same columns: every iteration hits and
            // returns its own value.
            for (i, e) in entries.iter().enumerate() {
                let key = reg.dedup_node(12, 0, vec![e.clone()]);
                let v = cache.probe(&key).expect("second sweep must hit");
                assert_eq!(
                    v.get(0, 0),
                    i as f64,
                    "iteration {i} got another iteration's value"
                );
            }
            let after_second = cache.stats();
            assert_eq!(after_second.hits, 6);
            assert_eq!(after_second.misses, 6);
            // One template serves all 12 iteration lineages.
            assert_eq!(reg.len(), 1);
        }

        /// Cache keys derived from dedup nodes are equivalent to keys
        /// derived from the expanded (full) lineage: probing with the
        /// expansion of iteration k's node finds nothing cached under a
        /// *different* iteration, and expansion round-trips the hash.
        #[test]
        fn expanded_keys_distinguish_iterations() {
            let reg = DedupRegistry::new();
            let e0 = LineageItem::leaf("input:X");
            let first = iteration_lineage(&e0);
            reg.register(13, 0, &first, std::slice::from_ref(&e0));

            // Chain iterations: entry of iteration k is output of k-1.
            let n1 = reg.dedup_node(13, 0, vec![first.clone()]);
            let n2 = reg.dedup_node(13, 0, vec![n1.clone()]);
            assert_ne!(n1.hash, n2.hash, "chained iterations must not collide");

            let x1 = reg.expand(&n1).unwrap();
            let x2 = reg.expand(&n2).unwrap();
            assert_ne!(x1.hash, x2.hash);
            // Expansion is deterministic: same node, same expanded hash.
            assert_eq!(x1.hash, reg.expand(&n1).unwrap().hash);
        }

        /// Concurrent template registration from parfor workers: exactly
        /// one template wins, every worker's dedup key stays usable.
        #[test]
        fn concurrent_registration_is_safe() {
            let reg = Arc::new(DedupRegistry::new());
            let entry = LineageItem::leaf("input:X");
            let workers: Vec<_> = (0..4)
                .map(|_| {
                    let reg = Arc::clone(&reg);
                    let entry = entry.clone();
                    std::thread::spawn(move || {
                        for _ in 0..50 {
                            let concrete = iteration_lineage(&entry);
                            reg.register(14, 0, &concrete, std::slice::from_ref(&entry));
                            let node = reg.dedup_node(14, 0, vec![entry.clone()]);
                            assert!(reg.expand(&node).is_some());
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().expect("worker panicked");
            }
            assert_eq!(reg.len(), 1);
        }
    }
}
