//! Lineage tracing and reuse of intermediates (paper §3.1).

pub mod cache;
pub mod dedup;
pub mod item;

pub use cache::{CacheStats, LineageCache};
pub use item::LineageItem;
