//! Lineage items: fine-grained provenance DAGs of logical operations.
//!
//! "We trace inputs (by name), literals, and all executed operations
//! (including non-determinism like generated seeds) to maintain lineage
//! DAGs of live variables" (paper §3.1). Every item carries a precomputed
//! structural hash: the reuse cache keys on it, so hashing must be O(1)
//! per probe.

use std::fmt::Write as _;
use std::sync::Arc;
use sysds_common::hash::{combine, hash_str};

/// One node of a lineage DAG.
#[derive(Debug)]
pub struct LineageItem {
    /// Logical opcode (`tsmm`, `ba+*`, `lit:3`, `input:X#42`, ...).
    pub opcode: String,
    /// Lineage of the operation's inputs.
    pub inputs: Vec<Arc<LineageItem>>,
    /// Structural hash over opcode and inputs (precomputed).
    pub hash: u64,
}

impl LineageItem {
    /// A leaf item (literal, named input, seeded generator).
    pub fn leaf(opcode: impl Into<String>) -> Arc<LineageItem> {
        let opcode = opcode.into();
        let hash = hash_str(&opcode);
        Arc::new(LineageItem {
            opcode,
            inputs: Vec::new(),
            hash,
        })
    }

    /// An operation item over input lineages.
    pub fn node(opcode: impl Into<String>, inputs: Vec<Arc<LineageItem>>) -> Arc<LineageItem> {
        let opcode = opcode.into();
        let mut hash = hash_str(&opcode);
        for i in &inputs {
            hash = combine(hash, i.hash);
        }
        Arc::new(LineageItem {
            opcode,
            inputs,
            hash,
        })
    }

    /// Number of nodes in the DAG (shared nodes counted once).
    pub fn dag_size(self: &Arc<Self>) -> usize {
        let mut seen = std::collections::HashSet::new();
        fn walk(item: &Arc<LineageItem>, seen: &mut std::collections::HashSet<u64>) {
            // hash + ptr to disambiguate equal-hash distinct nodes cheaply
            if !seen.insert(Arc::as_ptr(item) as u64) {
                return;
            }
            for i in &item.inputs {
                walk(i, seen);
            }
        }
        walk(self, &mut seen);
        seen.len()
    }

    /// Serialize the DAG as a deterministic, numbered trace — the format
    /// used for debugging via "query processing over lineage traces".
    pub fn trace(self: &Arc<Self>) -> String {
        let mut ids: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        let mut out = String::new();
        fn walk(
            item: &Arc<LineageItem>,
            ids: &mut std::collections::HashMap<u64, usize>,
            out: &mut String,
        ) -> usize {
            let ptr = Arc::as_ptr(item) as u64;
            if let Some(&id) = ids.get(&ptr) {
                return id;
            }
            let input_ids: Vec<usize> = item.inputs.iter().map(|i| walk(i, ids, out)).collect();
            let id = ids.len();
            ids.insert(ptr, id);
            let args: Vec<String> = input_ids.iter().map(|i| format!("%{i}")).collect();
            let _ = writeln!(out, "%{id} <- {} ({})", item.opcode, args.join(", "));
            id
        }
        walk(self, &mut ids, &mut out);
        out
    }
}

impl PartialEq for LineageItem {
    /// Structural equality via hash + opcode (collisions are accepted as
    /// equal like in SystemDS's lineage cache, which also keys on hashes).
    fn eq(&self, other: &Self) -> bool {
        self.hash == other.hash && self.opcode == other.opcode
    }
}

impl Eq for LineageItem {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_structures_hash_equal() {
        let x = LineageItem::leaf("input:X");
        let a = LineageItem::node("tsmm", vec![x.clone()]);
        let b = LineageItem::node("tsmm", vec![x.clone()]);
        assert_eq!(a.hash, b.hash);
    }

    #[test]
    fn different_opcodes_hash_differently() {
        let x = LineageItem::leaf("input:X");
        let a = LineageItem::node("tsmm", vec![x.clone()]);
        let b = LineageItem::node("r'", vec![x]);
        assert_ne!(a.hash, b.hash);
    }

    #[test]
    fn input_order_matters() {
        let x = LineageItem::leaf("input:X");
        let y = LineageItem::leaf("input:Y");
        let a = LineageItem::node("ba+*", vec![x.clone(), y.clone()]);
        let b = LineageItem::node("ba+*", vec![y, x]);
        assert_ne!(a.hash, b.hash);
    }

    #[test]
    fn seeds_propagate_into_hash() {
        let a = LineageItem::leaf("rand:100:10:7");
        let b = LineageItem::leaf("rand:100:10:8");
        assert_ne!(a.hash, b.hash);
    }

    #[test]
    fn dag_size_counts_shared_once() {
        let x = LineageItem::leaf("input:X");
        let t = LineageItem::node("tsmm", vec![x.clone()]);
        let s = LineageItem::node("+", vec![t.clone(), t.clone()]);
        assert_eq!(s.dag_size(), 3);
    }

    #[test]
    fn trace_is_deterministic_and_numbered() {
        let x = LineageItem::leaf("input:X");
        let y = LineageItem::leaf("lit:2");
        let p = LineageItem::node("*", vec![x, y]);
        let t = p.trace();
        assert!(t.contains("%0 <- input:X ()"));
        assert!(t.contains("%1 <- lit:2 ()"));
        assert!(t.contains("%2 <- * (%0, %1)"));
    }

    #[test]
    fn deep_chain_hashing_is_stable() {
        let mut item = LineageItem::leaf("input:X");
        for _ in 0..100 {
            item = LineageItem::node("exp", vec![item]);
        }
        let mut item2 = LineageItem::leaf("input:X");
        for _ in 0..100 {
            item2 = LineageItem::node("exp", vec![item2]);
        }
        assert_eq!(item.hash, item2.hash);
    }
}
