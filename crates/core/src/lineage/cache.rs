//! The lineage-keyed reuse cache with full and partial reuse (paper §3.1).
//!
//! "We establish a cache, where intermediates are identified by their
//! lineage (hash over the lineage DAG). Before executing an instruction,
//! we update the output lineage and probe the cache for full or partial
//! reuse. Partial reuse computes an output via a compensation plan over
//! cached intermediates."
//!
//! The implemented compensation plans cover the `steplm` pattern of
//! Example 1, where a feature column is cbind-appended between what-if
//! model trainings:
//!
//! * `tsmm(cbind(A, b))` = `[[tsmm(A), t(A)b], [t(b)A, t(b)b]]`
//! * `tmv(cbind(A, b), y)` = `rbind(tmv(A, y), t(b)y)`

use super::item::LineageItem;
use parking_lot::Mutex;
use std::sync::Arc;
use sysds_common::config::ReusePolicy;
use sysds_common::hash::FxHashMap;
use sysds_common::Result;
use sysds_tensor::kernels::{indexing, matmult, reorg, tsmm as tsmm_k};
use sysds_tensor::Matrix;

/// Cache statistics exposed for experiments (Fig. 5(c)/(d)).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    pub hits: u64,
    pub partial_hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

#[derive(Debug)]
struct CacheEntry {
    value: Arc<Matrix>,
    bytes: usize,
    last_access: u64,
    /// Time the original computation took (cost-aware eviction keeps
    /// expensive entries longer).
    compute_nanos: u128,
}

/// The lineage reuse cache.
#[derive(Debug)]
pub struct LineageCache {
    policy: ReusePolicy,
    limit: usize,
    inner: Mutex<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    map: FxHashMap<u64, CacheEntry>,
    bytes: usize,
    clock: u64,
    stats: CacheStats,
}

/// Minimum compute time for an intermediate to be admitted; cheap ops are
/// faster to recompute than to cache (SystemML's cost-based admission).
const MIN_COMPUTE_NANOS: u128 = 50_000; // 50µs

/// Mirror one cache event into the global observability counters.
fn obs_count(pick: impl Fn(&sysds_obs::Counters) -> &std::sync::atomic::AtomicU64) {
    if sysds_obs::stats_enabled() {
        pick(sysds_obs::counters()).fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

impl LineageCache {
    /// Create a cache with the given policy and byte limit.
    pub fn new(policy: ReusePolicy, limit: usize) -> LineageCache {
        LineageCache {
            policy,
            limit,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats
    }

    /// Bytes currently cached.
    pub fn bytes(&self) -> usize {
        self.inner.lock().bytes
    }

    /// Probe for a full match of `lineage`.
    pub fn probe(&self, lineage: &Arc<LineageItem>) -> Option<Arc<Matrix>> {
        if self.policy == ReusePolicy::None {
            return None;
        }
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        match inner.map.get_mut(&lineage.hash) {
            Some(e) => {
                e.last_access = clock;
                let v = e.value.clone();
                inner.stats.hits += 1;
                obs_count(|c| &c.lin_hits);
                Some(v)
            }
            None => {
                inner.stats.misses += 1;
                obs_count(|c| &c.lin_misses);
                None
            }
        }
    }

    /// Probe for partial reuse of `tsmm(cbind(A, b))` given the
    /// materialized `cbind` result `xi`. On a hit, assembles the output
    /// from the cached `tsmm(A)` plus the compensation products.
    pub fn probe_partial_tsmm(
        &self,
        lineage: &Arc<LineageItem>,
        xi: &Matrix,
        threads: usize,
        blas: bool,
    ) -> Result<Option<Arc<Matrix>>> {
        if self.policy != ReusePolicy::FullAndPartial {
            return Ok(None);
        }
        // Pattern: tsmm over a cbind lineage.
        let input = match lineage.inputs.as_slice() {
            [one] if one.opcode == "cbind" => one,
            _ => return Ok(None),
        };
        let base_lineage = LineageItem::node("tsmm", vec![input.inputs[0].clone()]);
        let Some(gram_a) = self.lookup(base_lineage.hash) else {
            return Ok(None);
        };
        let k = gram_a.rows();
        let m = xi.cols();
        if k >= m || xi.rows() == 0 {
            return Ok(None);
        }
        // Compensation plan: corner blocks from the appended columns.
        let a = indexing::slice(xi, 0..xi.rows(), 0..k)?;
        let b = indexing::slice(xi, 0..xi.rows(), k..m)?;
        let cross = matmult::matmul(&reorg::transpose(&a, threads), &b, threads, blas)?; // k x (m-k)
        let corner = tsmm_k::tsmm(&b, threads, blas); // (m-k) x (m-k)
        let top = indexing::cbind(&gram_a, &cross)?;
        let bottom = indexing::cbind(&reorg::transpose(&cross, threads), &corner)?;
        let full = indexing::rbind(&top, &bottom)?;
        self.inner.lock().stats.partial_hits += 1;
        obs_count(|c| &c.lin_partial_hits);
        Ok(Some(Arc::new(full)))
    }

    /// Probe for partial reuse of `tmv(cbind(A, b), y)`.
    pub fn probe_partial_tmv(
        &self,
        lineage: &Arc<LineageItem>,
        xi: &Matrix,
        y: &Matrix,
        threads: usize,
    ) -> Result<Option<Arc<Matrix>>> {
        if self.policy != ReusePolicy::FullAndPartial {
            return Ok(None);
        }
        let (x_lin, y_lin) = match lineage.inputs.as_slice() {
            [x, y] if x.opcode == "cbind" => (x, y),
            _ => return Ok(None),
        };
        let base = LineageItem::node("tmv", vec![x_lin.inputs[0].clone(), y_lin.clone()]);
        let Some(tmv_a) = self.lookup(base.hash) else {
            return Ok(None);
        };
        let k = tmv_a.rows();
        let m = xi.cols();
        if k >= m || xi.rows() == 0 {
            return Ok(None);
        }
        let b = indexing::slice(xi, 0..xi.rows(), k..m)?;
        let tail = tsmm_k::tmv(&b, y, threads)?;
        let full = indexing::rbind(&tmv_a, &tail)?;
        self.inner.lock().stats.partial_hits += 1;
        obs_count(|c| &c.lin_partial_hits);
        Ok(Some(Arc::new(full)))
    }

    fn lookup(&self, hash: u64) -> Option<Arc<Matrix>> {
        let mut inner = self.inner.lock();
        inner.clock += 1;
        let clock = inner.clock;
        inner.map.get_mut(&hash).map(|e| {
            e.last_access = clock;
            e.value.clone()
        })
    }

    /// Offer a computed intermediate for caching. Admission is cost-based:
    /// only values whose computation took at least 50µs are kept.
    pub fn put(&self, lineage: &Arc<LineageItem>, value: Arc<Matrix>, compute_nanos: u128) {
        if self.policy == ReusePolicy::None || compute_nanos < MIN_COMPUTE_NANOS {
            return;
        }
        let bytes = value.in_memory_size();
        if bytes > self.limit / 2 {
            return; // single entry would dominate the cache
        }
        let mut inner = self.inner.lock();
        if inner.map.contains_key(&lineage.hash) {
            return;
        }
        inner.clock += 1;
        let clock = inner.clock;
        inner.bytes += bytes;
        inner.map.insert(
            lineage.hash,
            CacheEntry {
                value,
                bytes,
                last_access: clock,
                compute_nanos,
            },
        );
        // Evict by (cheap-to-recompute, least-recently-used) order.
        while inner.bytes > self.limit {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, e)| (e.compute_nanos, e.last_access))
                .map(|(&h, _)| h);
            match victim {
                Some(h) => {
                    if let Some(e) = inner.map.remove(&h) {
                        inner.bytes -= e.bytes;
                        inner.stats.evictions += 1;
                        obs_count(|c| &c.lin_evictions);
                    }
                }
                None => break,
            }
        }
    }

    /// Drop all entries (e.g. between experiments).
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.bytes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sysds_tensor::kernels::gen;

    const BIG: u128 = 1_000_000; // 1ms, above the admission threshold

    fn cache() -> LineageCache {
        LineageCache::new(ReusePolicy::FullAndPartial, 1 << 20)
    }

    #[test]
    fn full_reuse_round_trip() {
        let c = cache();
        let lin = LineageItem::node("tsmm", vec![LineageItem::leaf("input:X")]);
        assert!(c.probe(&lin).is_none());
        let m = Arc::new(gen::rand_uniform(5, 5, 0.0, 1.0, 1.0, 301));
        c.put(&lin, m.clone(), BIG);
        let hit = c.probe(&lin).unwrap();
        assert!(hit.approx_eq(&m, 0.0));
        let stats = c.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn disabled_policy_never_caches() {
        let c = LineageCache::new(ReusePolicy::None, 1 << 20);
        let lin = LineageItem::leaf("x");
        c.put(&lin, Arc::new(Matrix::zeros(2, 2)), BIG);
        assert!(c.probe(&lin).is_none());
    }

    #[test]
    fn cheap_computations_not_admitted() {
        let c = cache();
        let lin = LineageItem::leaf("cheap");
        c.put(&lin, Arc::new(Matrix::zeros(2, 2)), 10); // 10ns
        assert!(c.probe(&lin).is_none());
    }

    #[test]
    fn eviction_respects_limit() {
        let c = LineageCache::new(ReusePolicy::Full, 20_000);
        for k in 0..10 {
            let lin = LineageItem::leaf(format!("m{k}"));
            c.put(
                &lin,
                Arc::new(gen::rand_uniform(20, 20, 0.0, 1.0, 1.0, k as u64)),
                BIG,
            );
        }
        assert!(c.bytes() <= 20_000);
        assert!(c.stats().evictions > 0);
    }

    #[test]
    fn partial_tsmm_compensation_is_exact() {
        let c = cache();
        let n = 40;
        let xg = gen::rand_uniform(n, 6, -1.0, 1.0, 1.0, 302);
        let xi_col = gen::rand_uniform(n, 1, -1.0, 1.0, 1.0, 303);
        let xi = indexing::cbind(&xg, &xi_col).unwrap();

        // Cache tsmm(Xg) under its lineage.
        let lin_xg = LineageItem::leaf("obj:Xg");
        let lin_col = LineageItem::leaf("obj:col");
        let lin_tsmm_xg = LineageItem::node("tsmm", vec![lin_xg.clone()]);
        c.put(&lin_tsmm_xg, Arc::new(tsmm_k::tsmm(&xg, 1, false)), BIG);

        // Probe tsmm(cbind(Xg, col)).
        let lin_cbind = LineageItem::node("cbind", vec![lin_xg, lin_col]);
        let lin_tsmm_xi = LineageItem::node("tsmm", vec![lin_cbind]);
        let got = c
            .probe_partial_tsmm(&lin_tsmm_xi, &xi, 1, false)
            .unwrap()
            .unwrap();
        let expect = tsmm_k::tsmm(&xi, 1, false);
        assert!(got.approx_eq(&expect, 1e-9));
        assert_eq!(c.stats().partial_hits, 1);
    }

    #[test]
    fn partial_tsmm_misses_without_base_entry() {
        let c = cache();
        let lin_cbind = LineageItem::node(
            "cbind",
            vec![LineageItem::leaf("obj:A"), LineageItem::leaf("obj:b")],
        );
        let lin = LineageItem::node("tsmm", vec![lin_cbind]);
        let xi = gen::rand_uniform(10, 3, 0.0, 1.0, 1.0, 304);
        assert!(c.probe_partial_tsmm(&lin, &xi, 1, false).unwrap().is_none());
    }

    #[test]
    fn partial_tmv_compensation_is_exact() {
        let c = cache();
        let n = 30;
        let xg = gen::rand_uniform(n, 4, -1.0, 1.0, 1.0, 305);
        let col = gen::rand_uniform(n, 1, -1.0, 1.0, 1.0, 306);
        let y = gen::rand_uniform(n, 1, -1.0, 1.0, 1.0, 307);
        let xi = indexing::cbind(&xg, &col).unwrap();

        let lin_xg = LineageItem::leaf("obj:Xg");
        let lin_col = LineageItem::leaf("obj:col");
        let lin_y = LineageItem::leaf("obj:y");
        let base = LineageItem::node("tmv", vec![lin_xg.clone(), lin_y.clone()]);
        c.put(&base, Arc::new(tsmm_k::tmv(&xg, &y, 1).unwrap()), BIG);

        let lin_cbind = LineageItem::node("cbind", vec![lin_xg, lin_col]);
        let probe_lin = LineageItem::node("tmv", vec![lin_cbind, lin_y]);
        let got = c
            .probe_partial_tmv(&probe_lin, &xi, &y, 1)
            .unwrap()
            .unwrap();
        let expect = tsmm_k::tmv(&xi, &y, 1).unwrap();
        assert!(got.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn partial_reuse_disabled_under_full_policy() {
        let c = LineageCache::new(ReusePolicy::Full, 1 << 20);
        let lin_cbind = LineageItem::node(
            "cbind",
            vec![LineageItem::leaf("obj:A"), LineageItem::leaf("obj:b")],
        );
        let lin = LineageItem::node("tsmm", vec![lin_cbind]);
        let xi = gen::rand_uniform(10, 3, 0.0, 1.0, 1.0, 308);
        assert!(c.probe_partial_tsmm(&lin, &xi, 1, false).unwrap().is_none());
    }

    #[test]
    fn oversized_entries_rejected() {
        let c = LineageCache::new(ReusePolicy::Full, 1000);
        let lin = LineageItem::leaf("big");
        c.put(
            &lin,
            Arc::new(gen::rand_uniform(50, 50, 0.0, 1.0, 1.0, 309)),
            BIG,
        );
        assert!(c.probe(&lin).is_none());
    }

    #[test]
    fn clear_resets_contents() {
        let c = cache();
        let lin = LineageItem::leaf("x");
        c.put(
            &lin,
            Arc::new(gen::rand_uniform(5, 5, 0.0, 1.0, 1.0, 310)),
            BIG,
        );
        assert!(c.probe(&lin).is_some());
        c.clear();
        assert!(c.probe(&lin).is_none());
        assert_eq!(c.bytes(), 0);
    }
}
