//! Embedding APIs (paper §2.2 (1)).
//!
//! * [`SystemDS`] — an `MLContext`-style session: compile + execute DML
//!   scripts with in-memory inputs and named outputs. The session owns the
//!   engine state (buffer pool, lineage cache), so reuse carries across
//!   `execute` calls.
//! * [`PreparedScript`] — the `JMLC`-style embedded scoring API: a script
//!   is pre-compiled once and then executed repeatedly with different
//!   in-memory inputs at low latency.

use crate::builtins;
use crate::compiler::{compile_program, CompiledProgram};
use crate::lineage::{CacheStats, LineageItem};
use crate::parser::parse_program;
use crate::runtime::instructions::ExecCtx;
use crate::runtime::value::{Data, SymbolTable};
use crate::runtime::Interpreter;
use std::sync::Arc;
use sysds_common::{EngineConfig, NetConfig, Result, ScalarValue, SysDsError};
use sysds_fed::{FederatedMatrix, Transport, WorkerHandle};
use sysds_frame::Frame;
use sysds_net::TcpTransport;
use sysds_tensor::Matrix;

/// Outputs of one script execution.
#[derive(Debug, Default)]
pub struct ScriptOutputs {
    values: Vec<(String, Data)>,
    lineages: Vec<(String, Option<Arc<LineageItem>>)>,
    /// Captured `print` output lines.
    pub stdout: Vec<String>,
}

impl ScriptOutputs {
    /// Look up an output by name.
    pub fn get(&self, name: &str) -> Result<&Data> {
        self.values
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| d)
            .ok_or_else(|| SysDsError::runtime(format!("no output '{name}'")))
    }

    /// An output as a matrix.
    pub fn matrix(&self, name: &str) -> Result<Arc<Matrix>> {
        self.get(name)?.as_matrix()
    }

    /// An output as a scalar.
    pub fn scalar(&self, name: &str) -> Result<ScalarValue> {
        self.get(name)?.as_scalar()
    }

    /// An output as an f64.
    pub fn f64(&self, name: &str) -> Result<f64> {
        self.get(name)?.as_f64()
    }

    /// An output as a frame.
    pub fn frame(&self, name: &str) -> Result<Arc<Frame>> {
        self.get(name)?.as_frame()
    }

    /// The lineage DAG of an output (requires `lineage: true` in the
    /// engine config). This is the paper's §3.1 provenance: every logical
    /// operation, literal, named input, and generated seed that produced
    /// the value.
    pub fn lineage(&self, name: &str) -> Option<Arc<LineageItem>> {
        self.lineages
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, l)| l.clone())
    }

    /// The lineage serialized as a numbered trace, for debugging queries.
    pub fn lineage_trace(&self, name: &str) -> Option<String> {
        self.lineage(name).map(|l| l.trace())
    }
}

/// An `MLContext`-style session.
pub struct SystemDS {
    ctx: Arc<ExecCtx>,
}

impl Default for SystemDS {
    fn default() -> Self {
        Self::new()
    }
}

impl SystemDS {
    /// Session with default configuration.
    pub fn new() -> SystemDS {
        Self::with_config(EngineConfig::default()).expect("default config is valid")
    }

    /// Session with an explicit configuration.
    pub fn with_config(config: EngineConfig) -> Result<SystemDS> {
        Ok(SystemDS {
            ctx: Arc::new(ExecCtx::new(config)?),
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.ctx.config
    }

    /// Echo `print` output to the process stdout as well as capturing it.
    pub fn echo_stdout(&mut self, echo: bool) {
        Arc::get_mut(&mut self.ctx)
            .expect("echo_stdout requires exclusive session access")
            .echo = echo;
    }

    /// Lineage-cache statistics (hits/misses/partial hits).
    pub fn cache_stats(&self) -> CacheStats {
        self.ctx.cache.stats()
    }

    /// Snapshot the session's runtime statistics: instruction heavy
    /// hitters, compiler-phase times, buffer-pool / parfor / federated
    /// counters, and lineage-cache stats. Only populated when the engine
    /// config enabled `stats` (or [`sysds_obs::enable_stats`] was called).
    pub fn run_report(&self) -> RunReport {
        use sysds_obs::Phase;
        let compiler_phases = [
            Phase::Parse,
            Phase::HopBuild,
            Phase::Rewrite,
            Phase::SizeProp,
            Phase::Lower,
            Phase::Recompile,
        ]
        .into_iter()
        .filter_map(sysds_obs::report::phase_summary)
        .collect();
        RunReport {
            heavy_hitters: sysds_obs::registry::heavy_hitters(Phase::Instruction, 10),
            compiler_phases,
            counters: sysds_obs::counters().snapshot(),
            cache: self.ctx.cache.stats(),
            audit: sysds_obs::audit::worst_offenders(10),
            recompile_triggers: sysds_obs::audit::recompile_triggers(),
            net_sites: sysds_obs::net::site_stats(),
        }
    }

    /// Clear the lineage reuse cache.
    pub fn clear_cache(&self) {
        self.ctx.cache.clear();
    }

    /// Export the spans buffered for `chrome_trace_file` as Chrome
    /// `trace_event` JSON. Returns the path written, or `None` when the
    /// config did not request a Chrome trace. Drains the buffer, so call
    /// once after the run(s) of interest.
    pub fn export_chrome_trace(&self) -> Result<Option<std::path::PathBuf>> {
        let Some(path) = self.ctx.config.chrome_trace_file.clone() else {
            return Ok(None);
        };
        let records = sysds_obs::take_memory_trace();
        sysds_obs::chrome_trace::write_chrome_trace(&path, &records)
            .map_err(|e| SysDsError::runtime(format!("cannot write chrome trace: {e}")))?;
        Ok(Some(path))
    }

    /// Compile a script (exposed for inspection and tests).
    pub fn compile(&self, script: &str) -> Result<Arc<CompiledProgram>> {
        let ast = {
            let _span = sysds_obs::Span::enter(sysds_obs::Phase::Parse, "parse");
            parse_program(script)?
        };
        let program = {
            let _span = sysds_obs::Span::enter(sysds_obs::Phase::HopBuild, "hop_build");
            compile_program(&ast, &builtins::resolve)?
        };
        Ok(Arc::new(program))
    }

    /// Compile and execute a script with in-memory `inputs`, returning the
    /// requested `outputs`.
    pub fn execute(
        &mut self,
        script: &str,
        inputs: &[(&str, Data)],
        outputs: &[&str],
    ) -> Result<ScriptOutputs> {
        let program = self.compile(script)?;
        self.execute_program(&program, inputs, outputs)
    }

    /// Execute an already-compiled program (see [`SystemDS::compile`]).
    /// Lets callers explain and execute the same compilation — the CLI's
    /// `--explain` path compiles exactly once.
    pub fn execute_program(
        &mut self,
        program: &Arc<CompiledProgram>,
        inputs: &[(&str, Data)],
        outputs: &[&str],
    ) -> Result<ScriptOutputs> {
        run_program(&self.ctx, program, inputs, outputs)
    }

    /// Render a compiled program at the requested explain level — HOP DAGs
    /// with propagated sizes/estimates, or lowered runtime instructions
    /// (the CLI's `--explain hops|runtime`).
    pub fn explain(
        &self,
        program: &CompiledProgram,
        level: crate::compiler::explain::ExplainLevel,
    ) -> String {
        crate::compiler::explain::explain(program, &self.ctx.config, level)
    }

    /// Stable 64-bit fingerprint of the plan this session's configuration
    /// would execute for `program` (hash of the runtime-level explain).
    pub fn plan_fingerprint(&self, program: &CompiledProgram) -> u64 {
        crate::compiler::explain::plan_fingerprint(program, &self.ctx.config)
    }

    /// Pre-compile a script for repeated low-latency execution (JMLC).
    pub fn prepare(&self, script: &str, outputs: &[&str]) -> Result<PreparedScript> {
        let program = self.compile(script)?;
        Ok(PreparedScript {
            ctx: self.ctx.clone(),
            program,
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
        })
    }

    /// Scatter a matrix across fresh in-process federated workers and wrap
    /// it as a federated input value (paper §3.3).
    pub fn federate(&self, m: &Matrix, num_workers: usize) -> Result<Data> {
        let workers: Vec<Arc<dyn Transport>> = (0..num_workers.max(1))
            .map(|_| {
                Arc::new(WorkerHandle::spawn(vec![], self.ctx.config.num_threads))
                    as Arc<dyn Transport>
            })
            .collect();
        let fed = FederatedMatrix::scatter(m, &workers)?;
        Ok(Data::Federated(Arc::new(fed)))
    }

    /// Scatter several row-aligned matrices (e.g. features and labels)
    /// across ONE shared set of federated workers, so federated
    /// instructions can combine them site-locally.
    pub fn federate_many(&self, ms: &[&Matrix], num_workers: usize) -> Result<Vec<Data>> {
        let workers: Vec<Arc<dyn Transport>> = (0..num_workers.max(1))
            .map(|_| {
                Arc::new(WorkerHandle::spawn(vec![], self.ctx.config.num_threads))
                    as Arc<dyn Transport>
            })
            .collect();
        ms.iter()
            .map(|m| {
                Ok(Data::Federated(Arc::new(FederatedMatrix::scatter(
                    m, &workers,
                )?)))
            })
            .collect()
    }

    /// Connect to remote TCP federated sites (one `host:port` per site,
    /// each running `sysds worker --listen`). The returned transports plug
    /// into [`SystemDS::federate_with`] so federated instructions and the
    /// learning algorithms run unchanged over the network.
    pub fn connect_sites(&self, addrs: &[&str], cfg: NetConfig) -> Result<Vec<Arc<dyn Transport>>> {
        addrs
            .iter()
            .map(|a| Ok(Arc::new(TcpTransport::connect(a, cfg)?) as Arc<dyn Transport>))
            .collect()
    }

    /// Scatter a matrix across an explicit set of transports (in-process
    /// workers, TCP sites, or a mix).
    pub fn federate_with(&self, m: &Matrix, workers: &[Arc<dyn Transport>]) -> Result<Data> {
        Ok(Data::Federated(Arc::new(FederatedMatrix::scatter(
            m, workers,
        )?)))
    }

    /// Scatter a matrix across remote TCP federated sites and wrap it as a
    /// federated input value. Convenience over [`SystemDS::connect_sites`]
    /// + [`SystemDS::federate_with`].
    pub fn federate_remote(&self, m: &Matrix, addrs: &[&str], cfg: NetConfig) -> Result<Data> {
        let sites = self.connect_sites(addrs, cfg)?;
        self.federate_with(m, &sites)
    }

    /// Wrap a matrix as an input value.
    pub fn matrix(&self, m: Matrix) -> Result<Data> {
        self.ctx.wrap_matrix(m)
    }

    /// Differentiate a scalar-valued DML expression with respect to the
    /// named input matrices via reverse-mode autodiff over the HOP DAG
    /// (§3.1: lineage/DAGs as the enabler for auto differentiation).
    /// Returns `(value, gradients)` with one gradient per `wrt` entry.
    pub fn gradient(
        &mut self,
        expr: &str,
        inputs: &[(&str, Data)],
        wrt: &[&str],
    ) -> Result<(f64, Vec<Arc<Matrix>>)> {
        let program = parse_program(&format!("__result = ({expr})"))?;
        let compiled = compile_program(&program, &builtins::resolve)?;
        let crate::compiler::Block::Basic(block) = &compiled.blocks[0] else {
            return Err(SysDsError::compile(
                "gradient() expects a single expression",
            ));
        };
        // Rebind to the expression-block convention and differentiate.
        let expr_block = crate::compiler::BasicBlock {
            dag: block.dag.clone(),
            roots: block
                .roots
                .iter()
                .map(|r| match r {
                    crate::compiler::Root::Bind(_, id) => {
                        crate::compiler::Root::Bind("__result".into(), *id)
                    }
                    other => other.clone(),
                })
                .collect(),
            plan: parking_lot::Mutex::new(None),
        };
        let mut gblock = crate::compiler::autodiff::gradient_block(&expr_block, wrt)?;
        for r in &mut gblock.roots {
            if let crate::compiler::Root::Bind(name, _) = r {
                if name == "__result" {
                    *name = "__val".into();
                }
            }
        }
        let mut grad_program = CompiledProgram::default();
        grad_program
            .blocks
            .push(crate::compiler::Block::Basic(gblock));
        let program = Arc::new(grad_program);
        let mut wanted: Vec<String> = vec!["__val".into()];
        wanted.extend(wrt.iter().map(|n| format!("__grad_{n}")));
        let refs: Vec<&str> = wanted.iter().map(String::as_str).collect();
        let out = run_program(&self.ctx, &program, inputs, &refs)?;
        let value = out.f64("__val")?;
        let grads = wrt
            .iter()
            .map(|n| out.matrix(&format!("__grad_{n}")))
            .collect::<Result<Vec<_>>>()?;
        Ok((value, grads))
    }
}

/// Structured runtime-statistics report — the data behind the CLI's
/// `--stats` output, exposed so embedders can inspect it programmatically.
#[derive(Debug)]
pub struct RunReport {
    /// Top instruction opcodes by cumulative execution time.
    pub heavy_hitters: Vec<sysds_obs::HeavyHitter>,
    /// One summary line per compiler phase that recorded any time.
    pub compiler_phases: Vec<String>,
    /// Global runtime counters (buffer pool, parfor, federated, recompiles).
    pub counters: sysds_obs::CounterSnapshot,
    /// Lineage-cache statistics for this session.
    pub cache: CacheStats,
    /// Worst estimate-vs-actual offenders: per-opcode residuals of
    /// compile-time size/memory estimates against observed outputs.
    pub audit: Vec<sysds_obs::AuditRow>,
    /// Per-trigger attribution of dynamic recompiles.
    pub recompile_triggers: sysds_obs::RecompileTriggers,
    /// Per-endpoint network statistics for remote federated sites
    /// (requests, retries, timeouts, bytes, latency), sorted by endpoint.
    pub net_sites: Vec<sysds_obs::SiteStats>,
}

impl RunReport {
    /// Render the full human-readable report printed by `sysds --stats`.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        out.push_str("Heavy hitter instructions:\n");
        if self.heavy_hitters.is_empty() {
            out.push_str("  (none recorded)\n");
        } else {
            out.push_str(&sysds_obs::report::render_table(&self.heavy_hitters));
        }
        if !self.compiler_phases.is_empty() {
            out.push_str("Compiler phases:\n");
            for line in &self.compiler_phases {
                let _ = writeln!(out, "  {line}");
            }
        }
        let c = &self.counters;
        let _ = writeln!(
            out,
            "Buffer pool: {} evictions ({} bytes spilled), {} restores ({} bytes restored)",
            c.buf_evictions, c.buf_spilled_bytes, c.buf_restores, c.buf_restored_bytes
        );
        let _ = writeln!(
            out,
            "Lineage cache: {} hits, {} partial, {} misses, {} evictions",
            self.cache.hits, self.cache.partial_hits, self.cache.misses, self.cache.evictions
        );
        if c.parfor_workers > 0 {
            let _ = writeln!(
                out,
                "Parfor: {} workers, {} iterations, {:.3}s cumulative worker time",
                c.parfor_workers,
                c.parfor_iters,
                c.parfor_worker_nanos as f64 / 1e9
            );
        }
        if c.fed_requests > 0 {
            let _ = writeln!(
                out,
                "Federated: {} requests, {:.3}s cumulative round-trip time",
                c.fed_requests,
                c.fed_request_nanos as f64 / 1e9
            );
        }
        if c.net_requests > 0 || c.net_failures > 0 {
            let _ = writeln!(
                out,
                "Network: {} requests ({} retries, {} timeouts, {} failed), {} bytes sent, {} bytes received, {:.3}s cumulative round-trip",
                c.net_requests,
                c.net_retries,
                c.net_timeouts,
                c.net_failures,
                c.net_bytes_sent,
                c.net_bytes_recv,
                c.net_request_nanos as f64 / 1e9
            );
            for s in &self.net_sites {
                let _ = writeln!(
                    out,
                    "  {}: {} req, {} retries, {} timeouts, {} failed, {} B out, {} B in, mean {:.3} ms, max {:.3} ms",
                    s.endpoint,
                    s.requests,
                    s.retries,
                    s.timeouts,
                    s.failures,
                    s.bytes_sent,
                    s.bytes_recv,
                    s.mean_nanos() as f64 / 1e6,
                    s.max_nanos as f64 / 1e6
                );
            }
        }
        if c.fusion_hits > 0 {
            let _ = writeln!(
                out,
                "Fused ops: {} hits, {} bytes of intermediates avoided",
                c.fusion_hits, c.fusion_bytes_saved
            );
        }
        if !self.audit.is_empty() {
            out.push_str("Estimate vs actual (worst offenders):\n");
            out.push_str(&sysds_obs::audit::render_audit_table(&self.audit));
        }
        let _ = writeln!(out, "Recompiles: {}", c.recompiles);
        if self.recompile_triggers.total() > 0 {
            let _ = writeln!(
                out,
                "Recompile triggers: {}",
                self.recompile_triggers.render()
            );
        }
        out
    }
}

/// A pre-compiled script bound to a session context.
pub struct PreparedScript {
    ctx: Arc<ExecCtx>,
    program: Arc<CompiledProgram>,
    outputs: Vec<String>,
}

impl PreparedScript {
    /// Execute with fresh inputs; compilation cost is not paid again.
    pub fn execute(&self, inputs: &[(&str, Data)]) -> Result<ScriptOutputs> {
        let out_refs: Vec<&str> = self.outputs.iter().map(String::as_str).collect();
        run_program(&self.ctx, &self.program, inputs, &out_refs)
    }
}

fn run_program(
    ctx: &Arc<ExecCtx>,
    program: &Arc<CompiledProgram>,
    inputs: &[(&str, Data)],
    outputs: &[&str],
) -> Result<ScriptOutputs> {
    let mut symbols = SymbolTable::new();
    for (name, data) in inputs {
        symbols.set(name.to_string(), data.clone(), None);
    }
    let interp = Interpreter::new(ctx.clone(), program.clone());
    {
        let _span = sysds_obs::Span::enter(sysds_obs::Phase::Execute, "run");
        interp.run(&mut symbols)?;
    }
    let mut out = ScriptOutputs {
        stdout: ctx.take_stdout(),
        ..Default::default()
    };
    for name in outputs {
        let entry = symbols.get(name)?;
        out.values.push((name.to_string(), entry.data.clone()));
        out.lineages.push((name.to_string(), entry.lineage.clone()));
    }
    Ok(out)
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;
    use sysds_tensor::kernels::gen;

    fn session() -> SystemDS {
        let mut config = EngineConfig::default();
        config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-api-tests");
        SystemDS::with_config(config).unwrap()
    }

    #[test]
    fn scalar_arithmetic_script() {
        let mut s = session();
        let out = s
            .execute("x = 2 + 3 * 4\ny = x / 2", &[], &["x", "y"])
            .unwrap();
        assert_eq!(out.scalar("x").unwrap(), ScalarValue::I64(14));
        assert_eq!(out.f64("y").unwrap(), 7.0);
    }

    #[test]
    fn matrix_input_output() {
        let mut s = session();
        let x = gen::rand_uniform(5, 3, 0.0, 1.0, 1.0, 501);
        let input = s.matrix(x.clone()).unwrap();
        let out = s
            .execute("Y = t(X) %*% X", &[("X", input)], &["Y"])
            .unwrap();
        let y = out.matrix("Y").unwrap();
        assert_eq!(y.shape(), (3, 3));
        let expect = sysds_tensor::kernels::tsmm::tsmm(&x, 1, false);
        assert!(y.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn print_captured_in_outputs() {
        let mut s = session();
        let out = s.execute(r#"print("hello " + 42)"#, &[], &[]).unwrap();
        assert_eq!(out.stdout, vec!["hello 42".to_string()]);
    }

    #[test]
    fn control_flow_executes() {
        let mut s = session();
        let out = s
            .execute(
                r#"
                acc = 0
                for (i in 1:10) { acc = acc + i }
                j = 0
                while (j * j < 50) { j = j + 1 }
                if (acc > 50) { flag = 1 } else { flag = 0 }
                "#,
                &[],
                &["acc", "j", "flag"],
            )
            .unwrap();
        assert_eq!(out.f64("acc").unwrap(), 55.0);
        assert_eq!(out.f64("j").unwrap(), 8.0);
        assert_eq!(out.f64("flag").unwrap(), 1.0);
    }

    #[test]
    fn missing_output_reported() {
        let mut s = session();
        assert!(s.execute("x = 1", &[], &["nope"]).is_err());
    }

    #[test]
    fn stop_statement_raises() {
        let mut s = session();
        let err = s.execute(r#"stop("by request")"#, &[], &[]).unwrap_err();
        assert!(matches!(err, SysDsError::Stop(msg) if msg == "by request"));
    }

    #[test]
    fn prepared_script_reexecutes() {
        let s = session();
        let prep = s.prepare("y = sum(X) * f", &["y"]).unwrap();
        let a = prep
            .execute(&[
                ("X", Data::from_matrix(Matrix::filled(2, 2, 1.0))),
                ("f", Data::from_f64(10.0)),
            ])
            .unwrap();
        assert_eq!(a.f64("y").unwrap(), 40.0);
        let b = prep
            .execute(&[
                ("X", Data::from_matrix(Matrix::filled(3, 1, 2.0))),
                ("f", Data::from_f64(0.5)),
            ])
            .unwrap();
        assert_eq!(b.f64("y").unwrap(), 3.0);
    }

    #[test]
    fn run_report_includes_counter_sections() {
        let mut config = EngineConfig::default();
        config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-api-tests");
        config.stats = true;
        let mut s = SystemDS::with_config(config).unwrap();
        // Matrix ops so that instructions actually execute (pure scalar
        // arithmetic constant-folds to a literal bind — zero instructions),
        // plus a cell-wise chain the fusion pass collapses.
        s.execute(
            "X = rand(rows=8, cols=4, seed=7)\ny = sum(X %*% t(X))\n\
             Y = rand(rows=8, cols=4, seed=8)\nz = sum((X - Y)^2)",
            &[],
            &["y", "z"],
        )
        .unwrap();
        let report = s.run_report();
        assert!(!report.heavy_hitters.is_empty());
        assert!(report.counters.fusion_hits >= 1, "fused chain must fire");
        let text = report.render();
        assert!(text.contains("Heavy hitter instructions:"));
        assert!(text.contains("Buffer pool:"));
        assert!(text.contains("Lineage cache:"));
        assert!(text.contains("Recompiles:"));
        assert!(text.contains("Fused ops:"), "{text}");
    }

    #[test]
    fn fusion_matches_unfused_execution() {
        let script = "d = sum((X - Y)^2)\nS = exp(-X) * Y\nr = colSums((X * Y) + 1)";
        let x = gen::rand_uniform(40, 7, -1.0, 1.0, 1.0, 601);
        let y = gen::rand_uniform(40, 7, -1.0, 1.0, 1.0, 602);
        let inputs = |s: &SystemDS| {
            vec![
                ("X", s.matrix(x.clone()).unwrap()),
                ("Y", s.matrix(y.clone()).unwrap()),
            ]
        };
        let mut fused = session();
        let a = fused
            .execute(script, &inputs(&fused), &["d", "S", "r"])
            .unwrap();
        let mut config = EngineConfig::default().fusion(false);
        config.spill_dir = sysds_common::testing::unique_temp_dir("sysds-api-tests");
        let mut plain = SystemDS::with_config(config).unwrap();
        let b = plain
            .execute(script, &inputs(&plain), &["d", "S", "r"])
            .unwrap();
        assert!((a.f64("d").unwrap() - b.f64("d").unwrap()).abs() < 1e-9);
        assert!(a
            .matrix("S")
            .unwrap()
            .approx_eq(&b.matrix("S").unwrap(), 1e-9));
        assert!(a
            .matrix("r")
            .unwrap()
            .approx_eq(&b.matrix("r").unwrap(), 1e-9));
    }

    #[test]
    fn lmds_builtin_runs_end_to_end() {
        let mut s = session();
        let (x, y) = gen::synthetic_regression(60, 4, 1.0, 0.0, 502);
        let out = s
            .execute(
                "B = lmDS(X=X, y=y, reg=0.0)",
                &[
                    ("X", Data::from_matrix(x.clone())),
                    ("y", Data::from_matrix(y.clone())),
                ],
                &["B"],
            )
            .unwrap();
        let b = out.matrix("B").unwrap();
        // zero-noise data: predictions must match labels
        let yhat = sysds_tensor::kernels::matmult::matmul(&x, &b, 1, false).unwrap();
        assert!(yhat.approx_eq(&y, 1e-6));
    }
}
